//! Analytic memory accounting for the Figure 6(h) experiment.
//!
//! The paper measures process working sets on Windows; portably and
//! deterministically, we instead *account* the bytes of every live buffer an
//! algorithm holds at its peak: the similarity matrix (or matrices), the
//! kernel's adjacency copies, the compressed graph, the per-thread memo
//! buffers, and — for mtx-SR — the dense SVD factors. This captures the
//! paper's claims (memo variants ≈ 20–30% over iter/psum; mtx-SR explodes)
//! without OS-specific instrumentation.

use crate::runners::Algo;
use simrank_star::{CompressedRightMultiplier, PlainRightMultiplier, RightMultiplier};
use ssr_compress::CompressOptions;
use ssr_graph::DiGraph;

/// Peak-byte estimate of running `algo` on `g` (damping-independent).
pub fn peak_bytes(algo: Algo, g: &DiGraph) -> usize {
    let n = g.node_count();
    let sim = n * n * 8; // result matrix
    let graph = g.estimated_bytes();
    match algo {
        Algo::IterGSr => {
            // S_k plus the kernel output P = S Qᵀ live simultaneously,
            // plus the kernel's in-list copy.
            let kernel = PlainRightMultiplier::new(g);
            graph + 2 * sim + kernel_bytes_plain(&kernel, g)
        }
        Algo::PsumSr => {
            // S_k, P = S Qᵀ, and Q P live in sequence; peak is 2 matrices
            // plus the transpose scratch (counts as a third).
            let kernel = PlainRightMultiplier::new(g);
            graph + 3 * sim + kernel_bytes_plain(&kernel, g)
        }
        Algo::MemoGSr => {
            let kernel = CompressedRightMultiplier::new(g, &CompressOptions::default());
            graph + 2 * sim + kernel_bytes_compressed(&kernel) + memo_buffer_bytes(&kernel)
        }
        Algo::MemoESr => {
            // Rᵀ, Tᵀ accumulate simultaneously; final product briefly holds
            // T transpose + result: 3 matrices at peak.
            let kernel = CompressedRightMultiplier::new(g, &CompressOptions::default());
            graph + 3 * sim + kernel_bytes_compressed(&kernel) + memo_buffer_bytes(&kernel)
        }
        Algo::MtxSr => {
            // Dense U (n×r), V (n×r), and the dense result + the product
            // scratch U·M (n×r): SVD densification is the blow-up.
            let r = (n / 20).clamp(8, 64);
            graph + 2 * sim + 3 * n * r * 8
        }
    }
}

fn kernel_bytes_plain(_kernel: &PlainRightMultiplier, g: &DiGraph) -> usize {
    // In-list copy: one u32 per edge + one Vec header + inv_deg f64 per node.
    g.edge_count() * 4 + g.node_count() * (std::mem::size_of::<Vec<u32>>() + 8)
}

fn kernel_bytes_compressed(kernel: &CompressedRightMultiplier) -> usize {
    kernel.compressed().estimated_bytes() + kernel.node_count() * 8
}

/// Per-thread concentrator partial-sum buffers (Algorithm 1's memo table).
fn memo_buffer_bytes(kernel: &CompressedRightMultiplier) -> usize {
    let threads = ssr_linalg::available_threads();
    kernel.compressed().concentrator_count() * 8 * threads
}

/// Bytes to *store* a threshold-sieved similarity result — the paper's
/// storage model (§5: "we clip similarity values at 10⁻⁴ … It can greatly
/// reduce space cost"). Each retained entry costs 12 bytes (packed u32
/// column + f64 score); diagonal entries are always kept. This is the
/// metric under which the paper's Fig. 6(h) shows mtx-SR exploding: its
/// SVD-densified output retains nearly all n² entries while the iterative
/// methods' results are sparse.
pub fn sieved_storage_bytes(sim: &simrank_star::SimilarityMatrix, threshold: f64) -> usize {
    (sim.pairs_above(threshold) + sim.node_count()) * 12
}

/// Human-readable byte count.
pub fn human(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1}{}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_gen::fixtures::figure1_graph;

    #[test]
    fn memo_costs_more_than_iter_but_not_wildly() {
        // Needs a non-toy graph: at realistic sizes the n² similarity
        // matrices dominate and the memo overhead is the paper's ~20-30%.
        let g = ssr_gen::random::rmat(9, 4096, ssr_gen::random::RmatParams::default(), 3);
        let iter = peak_bytes(Algo::IterGSr, &g);
        let memo = peak_bytes(Algo::MemoGSr, &g);
        // Memoization adds concentrator buffers but compression sheds edges,
        // so the net sits near iter's footprint — the paper's "fairly the
        // same order of magnitude", never a blow-up.
        assert!(memo as f64 > iter as f64 * 0.7, "memo {memo} vs iter {iter}");
        assert!(memo < iter * 2, "memo {memo} vs iter {iter}");
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(512), "512.0B");
        assert_eq!(human(2048), "2.0KB");
        assert_eq!(human(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    fn all_algos_positive() {
        let g = figure1_graph();
        for a in Algo::ALL {
            assert!(peak_bytes(a, &g) > 0);
        }
    }
}
