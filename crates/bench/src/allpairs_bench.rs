//! All-pairs perf trajectory — `BENCH_allpairs.json`, the sibling of the
//! query-engine benchmark ([`crate::query_bench`]).
//!
//! Six execution modes per dataset:
//!
//! * **serial** — [`simrank_star::geometric::iterate_serial`]: the textbook
//!   single-threaded row-at-a-time sweep (the pre-blocking baseline);
//! * **blocked** — [`simrank_star::AllPairsEngine::full`] over the plain
//!   kernel: 16-lane blocked kernel application + fused update, row blocks
//!   dispatched over worker threads;
//! * **memo** — the same sweep over the edge-concentrated kernel
//!   (Algorithm 1's memoization), compression time reported separately;
//! * **topk** — [`simrank_star::AllPairsEngine::top_k_all`]: streaming
//!   per-block ranking that never materializes the `n²` matrix, plain CSR
//!   lane kernel;
//! * **topk_memo** — the same ranking workload over the memoized kernel
//!   (the head-to-head "memoized kernel vs plain CSR" comparison on the
//!   compute-dense Horner path);
//! * **subset** — [`simrank_star::AllPairsEngine::rows`] on an
//!   in-degree-stratified row sample (the partial-pairs path).
//!
//! Each mode runs its workload `reps` times; the JSON reports the
//! minimum, median, and p95 pass time (nearest-rank over passes). The
//! regression gate compares **medians**; the headline speedup fields use
//! the **minimum** (criterion-style: the least noise-contaminated
//! estimate of true cost, the same convention as `exp_query_engine`'s
//! best-pass). The emitted schema mirrors `BENCH_query_engine.json` (see
//! README "Perf trajectory"); CI's scheduled job re-runs `--smoke` and
//! gates it against the committed baseline with `bench_check`.

use crate::timed;
use simrank_star::{geometric, AllPairsEngine, AllPairsOptions, SimStarParams};
use ssr_datasets::{load, DatasetId};
use ssr_eval::metrics::top_k_overlap;
use ssr_eval::queries::select_queries;
use std::fmt::Write as _;
use std::time::Duration;

/// Configuration of one bench run.
pub struct AllPairsBenchOptions {
    /// Tiny dataset + fewer reps: seconds, not minutes (the CI mode).
    pub smoke: bool,
    /// Where to write the JSON report.
    pub out_path: std::path::PathBuf,
}

const C: f64 = 0.6;
/// Same truncation depth as the query-engine trajectory.
const K: usize = 8;
const TOP_K: usize = 20;
const SUBSET_ROWS: usize = 64;
const SEED: u64 = 0x0BE7_C0DE;

/// Per-mode pass times, sorted ascending.
struct ModeStats {
    runs: Vec<Duration>,
}

impl ModeStats {
    fn collect(mut runs: Vec<Duration>) -> Self {
        runs.sort();
        ModeStats { runs }
    }

    fn total_ms(&self) -> f64 {
        self.runs.iter().map(Duration::as_secs_f64).sum::<f64>() * 1e3
    }

    /// Nearest-rank percentile over the pass times.
    fn percentile_ms(&self, p: f64) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let rank = (self.runs.len() as f64 * p).ceil() as usize;
        self.runs[rank.saturating_sub(1).min(self.runs.len() - 1)].as_secs_f64() * 1e3
    }

    fn median_ms(&self) -> f64 {
        self.percentile_ms(0.50)
    }

    /// Fastest pass — the least noise-contaminated estimate of true cost.
    fn min_ms(&self) -> f64 {
        self.runs.first().map_or(0.0, |d| d.as_secs_f64() * 1e3)
    }

    fn json(&self) -> String {
        format!(
            "{{\"runs\": {}, \"total_ms\": {:.3}, \"min_ms\": {:.3}, \"median_ms\": {:.3}, \"p95_ms\": {:.3}}}",
            self.runs.len(),
            self.total_ms(),
            self.min_ms(),
            self.median_ms(),
            self.percentile_ms(0.95),
        )
    }
}

/// Runs `reps` timed passes of `f` (first pass doubles as warmup — it is
/// kept: the median absorbs it).
fn passes(reps: usize, mut f: impl FnMut()) -> ModeStats {
    ModeStats::collect((0..reps.max(1)).map(|_| timed(&mut f).1).collect())
}

struct DatasetReport {
    name: &'static str,
    divisor: usize,
    nodes: usize,
    edges: usize,
    engine_build_ms: f64,
    memo_build_ms: f64,
    compression_ratio: f64,
    compression_bytes: usize,
    concentrators: usize,
    topk_agreement: f64,
    serial: ModeStats,
    blocked: ModeStats,
    memo: ModeStats,
    topk: ModeStats,
    topk_memo: ModeStats,
    subset: ModeStats,
}

impl DatasetReport {
    fn speedup_blocked_vs_serial(&self) -> f64 {
        self.serial.min_ms() / self.blocked.min_ms().max(1e-9)
    }

    fn speedup_memo_vs_blocked(&self) -> f64 {
        self.blocked.min_ms() / self.memo.min_ms().max(1e-9)
    }

    /// Memoized kernel vs plain CSR on the streaming ranking workload.
    fn speedup_memo_topk(&self) -> f64 {
        self.topk.min_ms() / self.topk_memo.min_ms().max(1e-9)
    }
}

/// Runs the benchmark, prints a summary table, and writes the JSON report.
pub fn run_allpairs_bench(opts: &AllPairsBenchOptions) {
    // (dataset, divisor, reps): sizes chosen so the serial baseline stays
    // in seconds; Web-Google's stand-in compresses hardest (R-MAT shares
    // in-sets), so it demonstrates the memoized kernel's win.
    // Smoke needs enough work per pass (hundreds of ms) and enough passes
    // for a stable median: the regression gate compares medians across
    // runs, and a tiny workload's median drifts far more than 25% on a
    // busy runner.
    let plan: Vec<(DatasetId, usize, usize)> = if opts.smoke {
        vec![(DatasetId::D05, 2, 5)]
    } else {
        vec![(DatasetId::CitHepTh, 8, 7), (DatasetId::WebGoogle, 213, 3)]
    };
    let params = SimStarParams { c: C, iterations: K };
    let mut reports = Vec::new();
    println!(
        "ALL-PAIRS BENCH (c={C}, k={K}, top-k={TOP_K}, subset={SUBSET_ROWS}, threads={})",
        ssr_linalg::available_threads()
    );
    println!(
        "{:<11} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "dataset",
        "n",
        "m",
        "serial",
        "blocked",
        "memo",
        "topk",
        "topk_memo",
        "subset",
        "blk/ser",
        "mem/blk",
        "mem/topk"
    );
    for &(id, divisor, reps) in &plan {
        let d = load(id, divisor);
        let g = &d.graph;
        let n = g.node_count();

        let (engine, build) = timed(|| AllPairsEngine::new(g, params));
        let memo_opts = AllPairsOptions { compress: true, ..Default::default() };
        let (memo_engine, memo_build) =
            timed(|| AllPairsEngine::with_options(g, params, memo_opts));
        let report_comp = memo_engine.compression().expect("compressed engine has stats");

        let serial = passes(reps, || {
            std::hint::black_box(geometric::iterate_serial(g, &params));
        });
        let blocked = passes(reps, || {
            std::hint::black_box(engine.full());
        });
        let memo = passes(reps, || {
            std::hint::black_box(memo_engine.full());
        });
        let topk = passes(reps, || {
            std::hint::black_box(engine.top_k_all(TOP_K));
        });
        let topk_memo = passes(reps, || {
            std::hint::black_box(memo_engine.top_k_all(TOP_K));
        });
        let subset_rows = {
            let mut q = select_queries(g, 5, SUBSET_ROWS.div_ceil(5), SEED);
            q.truncate(SUBSET_ROWS.min(n));
            q
        };
        let subset = passes(reps, || {
            std::hint::black_box(engine.rows(&subset_rows));
        });

        // Sanity: the streaming ranking names the same items as the
        // materialized matrix (up to near-ties); recorded in the JSON so a
        // silent ranking regression is visible in the trajectory.
        let full = engine.full();
        let streamed = engine.top_k_all(TOP_K);
        let probe = (0..n).step_by((n / 16).max(1));
        let mut agreement = 0.0;
        let mut probed = 0usize;
        for q in probe {
            let a: Vec<u32> = streamed[q].iter().map(|&(v, _)| v).collect();
            let b: Vec<u32> = full.top_k(q as u32, TOP_K).iter().map(|&(v, _)| v).collect();
            agreement += top_k_overlap(&a, &b);
            probed += 1;
        }
        let topk_agreement = agreement / probed.max(1) as f64;

        let report = DatasetReport {
            name: id.name(),
            divisor,
            nodes: n,
            edges: g.edge_count(),
            engine_build_ms: build.as_secs_f64() * 1e3,
            memo_build_ms: memo_build.as_secs_f64() * 1e3,
            compression_ratio: report_comp.ratio,
            compression_bytes: report_comp.estimated_bytes,
            concentrators: report_comp.concentrators,
            topk_agreement,
            serial,
            blocked,
            memo,
            topk,
            topk_memo,
            subset,
        };
        println!(
            "{:<11} {:>6} {:>8} {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.1}ms {:>7.2}x {:>7.2}x {:>7.2}x",
            report.name,
            report.nodes,
            report.edges,
            report.serial.min_ms(),
            report.blocked.min_ms(),
            report.memo.min_ms(),
            report.topk.min_ms(),
            report.topk_memo.min_ms(),
            report.subset.min_ms(),
            report.speedup_blocked_vs_serial(),
            report.speedup_memo_vs_blocked(),
            report.speedup_memo_topk(),
        );
        reports.push(report);
    }
    let json = render_json(opts.smoke, &reports);
    std::fs::write(&opts.out_path, json).expect("write bench JSON");
    println!("wrote {}", opts.out_path.display());
}

fn render_json(smoke: bool, reports: &[DatasetReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"ssr-bench/allpairs/v1\",\n");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(
        s,
        "  \"params\": {{\"c\": {C}, \"k\": {K}, \"top_k\": {TOP_K}, \"subset_rows\": {SUBSET_ROWS}, \"seed\": {SEED}}},"
    );
    let _ = writeln!(s, "  \"threads\": {},", ssr_linalg::available_threads());
    s.push_str("  \"datasets\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"divisor\": {},", r.divisor);
        let _ = writeln!(s, "      \"nodes\": {},", r.nodes);
        let _ = writeln!(s, "      \"edges\": {},", r.edges);
        let _ = writeln!(s, "      \"engine_build_ms\": {:.3},", r.engine_build_ms);
        let _ = writeln!(s, "      \"memo_build_ms\": {:.3},", r.memo_build_ms);
        let _ = writeln!(
            s,
            "      \"compression\": {{\"ratio\": {:.4}, \"bytes\": {}, \"concentrators\": {}}},",
            r.compression_ratio, r.compression_bytes, r.concentrators
        );
        let _ = writeln!(s, "      \"topk_agreement\": {:.4},", r.topk_agreement);
        s.push_str("      \"modes\": {\n");
        let _ = writeln!(s, "        \"serial\": {},", r.serial.json());
        let _ = writeln!(s, "        \"blocked\": {},", r.blocked.json());
        let _ = writeln!(s, "        \"memo\": {},", r.memo.json());
        let _ = writeln!(s, "        \"topk\": {},", r.topk.json());
        let _ = writeln!(s, "        \"topk_memo\": {},", r.topk_memo.json());
        let _ = writeln!(s, "        \"subset\": {}", r.subset.json());
        s.push_str("      },\n");
        let _ = writeln!(
            s,
            "      \"speedup_blocked_vs_serial\": {:.2},",
            r.speedup_blocked_vs_serial()
        );
        let _ =
            writeln!(s, "      \"speedup_memo_vs_blocked\": {:.2},", r.speedup_memo_vs_blocked());
        let _ = writeln!(s, "      \"speedup_memo_topk\": {:.2}", r.speedup_memo_topk());
        s.push_str(if i + 1 < reports.len() { "    },\n" } else { "    }\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_stats_median_and_p95() {
        let s = ModeStats::collect(vec![
            Duration::from_millis(30),
            Duration::from_millis(10),
            Duration::from_millis(20),
        ]);
        assert!((s.median_ms() - 20.0).abs() < 1e-9);
        assert!((s.percentile_ms(0.95) - 30.0).abs() < 1e-9);
        assert!((s.total_ms() - 60.0).abs() < 1e-6);
        assert!((s.min_ms() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape_has_schema_and_modes() {
        let stats = || ModeStats::collect(vec![Duration::from_millis(5)]);
        let r = DatasetReport {
            name: "D05",
            divisor: 4,
            nodes: 10,
            edges: 20,
            engine_build_ms: 1.0,
            memo_build_ms: 2.0,
            compression_ratio: 0.25,
            compression_bytes: 1024,
            concentrators: 3,
            topk_agreement: 1.0,
            serial: stats(),
            blocked: stats(),
            memo: stats(),
            topk: stats(),
            topk_memo: stats(),
            subset: stats(),
        };
        let json = render_json(true, &[r]);
        for needle in [
            "ssr-bench/allpairs/v1",
            "\"serial\"",
            "\"blocked\"",
            "\"memo\"",
            "\"topk\"",
            "\"topk_memo\"",
            "\"subset\"",
            "\"min_ms\"",
            "\"median_ms\"",
            "\"speedup_blocked_vs_serial\"",
            "\"speedup_memo_topk\"",
            "\"compression\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
