//! Deterministic special-structure graphs for tests and adversarial cases.

use ssr_graph::{DiGraph, NodeId};

/// Directed chain `0 → 1 → … → n-1`.
pub fn directed_path(n: usize) -> DiGraph {
    let edges: Vec<(NodeId, NodeId)> =
        (0..n.saturating_sub(1)).map(|i| (i as NodeId, i as NodeId + 1)).collect();
    DiGraph::from_edges(n, &edges).expect("chain is well-formed")
}

/// Directed cycle `0 → 1 → … → n-1 → 0`. Panics for `n < 2`.
pub fn directed_cycle(n: usize) -> DiGraph {
    assert!(n >= 2, "cycle needs at least 2 nodes");
    let mut edges: Vec<(NodeId, NodeId)> =
        (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
    edges.push((n as NodeId - 1, 0));
    DiGraph::from_edges(n, &edges).expect("cycle is well-formed")
}

/// In-star: `leaves` nodes all pointing at a hub (node 0). The hub's
/// in-neighborhood is the whole leaf set — the best case for SimRank's
/// common-in-neighbor base case and the worst case for its "similarity
/// decreases as common in-neighbors grow" quirk.
pub fn in_star(leaves: usize) -> DiGraph {
    let edges: Vec<(NodeId, NodeId)> = (1..=leaves).map(|i| (i as NodeId, 0)).collect();
    DiGraph::from_edges(leaves + 1, &edges).expect("star is well-formed")
}

/// Out-star: hub (node 0) pointing at `leaves` nodes. All leaves share the
/// single in-neighbor 0 and are maximally SimRank-similar to each other.
pub fn out_star(leaves: usize) -> DiGraph {
    let edges: Vec<(NodeId, NodeId)> = (1..=leaves).map(|i| (0, i as NodeId)).collect();
    DiGraph::from_edges(leaves + 1, &edges).expect("star is well-formed")
}

/// Complete bipartite digraph `K_{t,b}`: top nodes `0..t` each pointing at
/// every bottom node `t..t+b`. One maximal biclique — edge concentration
/// compresses its `t·b` edges to `t+b`, the crate's best case.
pub fn complete_bipartite(t: usize, b: usize) -> DiGraph {
    let mut edges = Vec::with_capacity(t * b);
    for u in 0..t {
        for v in 0..b {
            edges.push((u as NodeId, (t + v) as NodeId));
        }
    }
    DiGraph::from_edges(t + b, &edges).expect("bipartite is well-formed")
}

/// Perfect binary in-tree of `depth` levels: every child points at its
/// parent (citation-style), root is node 0. `2^depth - 1` nodes.
pub fn binary_in_tree(depth: u32) -> DiGraph {
    let n = (1usize << depth) - 1;
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        let parent = (v - 1) / 2;
        edges.push((v as NodeId, parent as NodeId));
    }
    DiGraph::from_edges(n, &edges).expect("tree is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = directed_path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(4), 0);
    }

    #[test]
    fn single_node_path() {
        let g = directed_path(1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn cycle_every_degree_one() {
        let g = directed_cycle(6);
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 1);
            assert_eq!(g.out_degree(v), 1);
        }
    }

    #[test]
    fn stars() {
        let g_in = in_star(4);
        assert_eq!(g_in.in_degree(0), 4);
        assert_eq!(g_in.out_degree(0), 0);
        let g_out = out_star(4);
        assert_eq!(g_out.out_degree(0), 4);
        for v in 1..=4 {
            assert_eq!(g_out.in_neighbors(v), &[0]);
        }
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        for v in 3..7 {
            assert_eq!(g.in_degree(v), 3);
        }
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_in_tree(3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.in_degree(0), 2); // root referenced by its two children
        assert_eq!(g.out_degree(0), 0);
        // Leaves cite their parents.
        assert!(g.has_edge(3, 1) && g.has_edge(4, 1));
    }
}
