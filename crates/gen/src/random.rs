//! Uniform and R-MAT random graph generators.
//!
//! R-MAT (recursive matrix) is the model behind GTgraph, the synthetic
//! generator the paper uses for its density sweep (Figure 6(g)). Each edge
//! recursively picks a quadrant of the adjacency matrix with probabilities
//! `(a, b, c, d)`; skewed quadrant weights produce the heavy-tailed degree
//! distributions that make biclique compression effective.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssr_graph::{DiGraph, GraphBuilder, NodeId};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct directed edges chosen
/// uniformly among the `n(n-1)` non-loop pairs. Panics if `m` exceeds that.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> DiGraph {
    assert!(n >= 2 || m == 0, "need at least 2 nodes for edges");
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= max_edges, "requested {m} edges but only {max_edges} possible");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        if chosen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    let mut b = GraphBuilder::with_capacity(m).reserve_nodes(n);
    b.extend_edges(edges);
    b.build().expect("no self-loops generated")
}

/// Quadrant probabilities of the R-MAT model. Must sum to ~1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant weight (self-similar "rich get richer" corner).
    pub a: f64,
    /// Top-right quadrant weight.
    pub b: f64,
    /// Bottom-left quadrant weight.
    pub c: f64,
    /// Bottom-right quadrant weight.
    pub d: f64,
}

impl Default for RmatParams {
    /// The canonical skew used by GTgraph and the Graph500 benchmark.
    fn default() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 }
    }
}

impl RmatParams {
    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!((s - 1.0).abs() < 1e-6, "R-MAT quadrant weights must sum to 1, got {s}");
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "negative quadrant weight"
        );
    }
}

/// R-MAT graph on `2^scale` nodes aiming for `m` distinct non-loop edges.
///
/// Because R-MAT naturally produces duplicates, we oversample until `m`
/// distinct edges are found (or a generous attempt budget is exhausted, in
/// which case the graph has slightly fewer edges — matching GTgraph's own
/// behaviour of emitting duplicates that downstream tools dedup).
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> DiGraph {
    params.validate();
    let n: usize = 1 << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    let budget = m.saturating_mul(20).max(1024);
    let mut attempts = 0usize;
    while edges.len() < m && attempts < budget {
        attempts += 1;
        let (u, v) = rmat_edge(scale, &params, &mut rng);
        if u == v {
            continue;
        }
        if chosen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    let mut b = GraphBuilder::with_capacity(edges.len()).reserve_nodes(n);
    b.extend_edges(edges);
    b.build().expect("self-loops filtered above")
}

/// Web-graph generator: R-MAT plus **boilerplate link blocks**.
///
/// Real web graphs are dominated by templated pages: navigation bars,
/// footers and mirrored sections give large groups of pages *identical
/// in-link blocks* — the very structure Buehrer & Chellapilla's compressor
/// (and this paper's edge concentration) exploits. Pure R-MAT lacks it, so a
/// `template_fraction` of the edge budget is spent on planted blocks: a
/// random "template" set of source pages is linked wholesale to a group of
/// member pages.
pub fn webgraph(scale: u32, m: usize, template_fraction: f64, seed: u64) -> DiGraph {
    assert!((0.0..=1.0).contains(&template_fraction), "fraction must be in [0,1]");
    let n: usize = 1 << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let template_budget = (m as f64 * template_fraction) as usize;
    let base = rmat(scale, m - template_budget, RmatParams::default(), seed ^ 0x1234_5678);
    let mut edges: Vec<(NodeId, NodeId)> = base.edges().collect();
    let mut spent = 0usize;
    while spent < template_budget {
        // Template block: 3-12 source pages linked into 4-40 member pages.
        let srcs = rng.gen_range(3..=12usize);
        let members = rng.gen_range(4..=40usize);
        let template: Vec<NodeId> = (0..srcs).map(|_| rng.gen_range(0..n as NodeId)).collect();
        for _ in 0..members {
            let page = rng.gen_range(0..n as NodeId);
            for &s in &template {
                if s != page {
                    edges.push((s, page));
                    spent += 1;
                }
            }
            if spent >= template_budget {
                break;
            }
        }
    }
    let mut b = GraphBuilder::with_capacity(edges.len()).reserve_nodes(n);
    b.extend_edges(edges);
    b.build().expect("self-links filtered")
}

fn rmat_edge(scale: u32, p: &RmatParams, rng: &mut StdRng) -> (NodeId, NodeId) {
    let mut u: NodeId = 0;
    let mut v: NodeId = 0;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        // Add ±10% per-level noise to the quadrant weights, as GTgraph does,
        // so the degree sequence is not perfectly self-similar.
        let jitter = |w: f64, r: &mut StdRng| w * (0.9 + 0.2 * r.gen::<f64>());
        let (a, b, c, d) = (jitter(p.a, rng), jitter(p.b, rng), jitter(p.c, rng), jitter(p.d, rng));
        let total = a + b + c + d;
        let roll = rng.gen::<f64>() * total;
        if roll < a {
            // top-left: no bits set
        } else if roll < a + b {
            v |= 1;
        } else if roll < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(50, 200, 1);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 200);
    }

    #[test]
    fn gnm_deterministic() {
        let g1 = erdos_renyi_gnm(30, 80, 42);
        let g2 = erdos_renyi_gnm(30, 80, 42);
        assert_eq!(g1, g2);
        let g3 = erdos_renyi_gnm(30, 80, 43);
        assert_ne!(g1, g3);
    }

    #[test]
    fn gnm_no_self_loops() {
        let g = erdos_renyi_gnm(20, 100, 7);
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn gnm_too_many_edges_panics() {
        let _ = erdos_renyi_gnm(3, 10, 0);
    }

    #[test]
    fn rmat_reaches_target_and_is_deterministic() {
        let g1 = rmat(8, 1000, RmatParams::default(), 5);
        let g2 = rmat(8, 1000, RmatParams::default(), 5);
        assert_eq!(g1, g2);
        assert_eq!(g1.node_count(), 256);
        assert_eq!(g1.edge_count(), 1000);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(9, 4000, RmatParams::default(), 9);
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let avg = g.edge_count() as f64 / g.node_count() as f64;
        // Heavy tail: the hub should far exceed the mean degree.
        assert!((max_in as f64) > 4.0 * avg, "expected skew, max_in={max_in}, avg={avg:.2}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_params_validated() {
        let _ = rmat(4, 10, RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5 }, 0);
    }

    #[test]
    fn uniform_rmat_is_roughly_er() {
        let p = RmatParams { a: 0.25, b: 0.25, c: 0.25, d: 0.25 };
        let g = rmat(8, 2000, p, 3);
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let avg = g.edge_count() as f64 / g.node_count() as f64;
        // Unskewed quadrants: hub degree stays within a small factor of mean.
        assert!((max_in as f64) < 4.0 * avg, "max_in={max_in}, avg={avg:.2}");
    }
}
