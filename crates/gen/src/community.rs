//! Planted-community co-authorship generator.
//!
//! Stand-in for the paper's DBLP-derived graphs (DBLP, D05, D08, D11). The
//! operative properties of co-authorship networks for this paper are:
//!
//! * **undirectedness** — which makes RWR coincide with SimRank\* in
//!   Figure 6(a) and P-Rank with SimRank;
//! * **overlapping dense groups** (papers' author lists form cliques) —
//!   which is exactly what gives edge-concentration its compression ratio;
//! * a community structure that provides a *generator-known ground truth*
//!   for ranking-quality evaluation (two authors are "truly related" in
//!   proportion to shared community membership).
//!
//! The generator plants `k` communities with Zipf-distributed sizes, gives
//! each node a primary (and sometimes secondary) community, then emits
//! clique-like "papers": small author sets drawn mostly from one community.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssr_graph::{DiGraph, GraphBuilder, NodeId};

/// Parameters for the co-authorship generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityParams {
    /// Number of authors.
    pub nodes: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Number of "papers" (cliques) to emit.
    pub papers: usize,
    /// Authors per paper are drawn from `2..=max_authors`.
    pub max_authors: usize,
    /// Probability that a paper draws one author from outside its community
    /// (cross-community collaboration).
    pub crossover_prob: f64,
}

impl Default for CommunityParams {
    fn default() -> Self {
        CommunityParams {
            nodes: 1000,
            communities: 25,
            papers: 900,
            max_authors: 5,
            crossover_prob: 0.15,
        }
    }
}

/// Output of the generator: the symmetric co-authorship graph plus the
/// planted structure (ground truth for `ssr-eval`).
#[derive(Debug, Clone)]
pub struct CommunityGraph {
    /// The symmetrised co-authorship graph.
    pub graph: DiGraph,
    /// Primary community of each node.
    pub community: Vec<u32>,
    /// Number of papers each author appears on (the H-index/role proxy:
    /// prolific authors are "high-role" nodes).
    pub paper_count: Vec<u32>,
    /// The emitted papers (author lists), for exact ground-truth relevance.
    pub papers: Vec<Vec<NodeId>>,
}

/// Generates a planted-community co-authorship graph.
pub fn community_graph(params: CommunityParams, seed: u64) -> CommunityGraph {
    assert!(params.nodes >= 4, "need at least 4 authors");
    assert!(params.communities >= 1 && params.communities <= params.nodes);
    assert!(params.max_authors >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.nodes;
    let k = params.communities;

    // Zipf-ish community sizes: weight 1/(rank+1).
    let weights: Vec<f64> = (0..k).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total_w: f64 = weights.iter().sum();
    let mut community = vec![0u32; n];
    for (v, c) in community.iter_mut().enumerate() {
        // First k nodes seed one community each so none is empty.
        if v < k {
            *c = v as u32;
            continue;
        }
        let mut roll = rng.gen::<f64>() * total_w;
        let mut idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if roll < *w {
                idx = i;
                break;
            }
            roll -= w;
            idx = i;
        }
        *c = idx as u32;
    }
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n {
        members[community[v] as usize].push(v as NodeId);
    }

    let mut builder = GraphBuilder::with_capacity(params.papers * params.max_authors * 2);
    let mut paper_count = vec![0u32; n];
    let mut papers = Vec::with_capacity(params.papers);
    for _ in 0..params.papers {
        let c = rng.gen_range(0..k);
        let pool = &members[c];
        if pool.len() < 2 {
            continue;
        }
        let n_authors = rng.gen_range(2..=params.max_authors).min(pool.len());
        let mut authors = std::collections::HashSet::with_capacity(n_authors * 2);
        let mut guard = 0;
        while authors.len() < n_authors && guard < n_authors * 20 {
            guard += 1;
            authors.insert(pool[rng.gen_range(0..pool.len())]);
        }
        let mut authors: Vec<NodeId> = authors.into_iter().collect();
        if rng.gen::<f64>() < params.crossover_prob {
            let outsider = rng.gen_range(0..n) as NodeId;
            if !authors.contains(&outsider) {
                authors.push(outsider);
            }
        }
        authors.sort_unstable();
        for i in 0..authors.len() {
            paper_count[authors[i] as usize] += 1;
            for j in (i + 1)..authors.len() {
                builder.push_undirected(authors[i], authors[j]);
            }
        }
        papers.push(authors);
    }
    let graph = builder.reserve_nodes(n).build().expect("distinct authors, no loops");
    CommunityGraph { graph, community, paper_count, papers }
}

impl CommunityGraph {
    /// Generator-known relevance of two authors: the number of shared papers
    /// plus a half-point for sharing a primary community. This is the
    /// "ground truth" signal used in place of the paper's human judges.
    pub fn true_relevance(&self, a: NodeId, b: NodeId) -> f64 {
        let shared = self
            .papers
            .iter()
            .filter(|p| p.binary_search(&a).is_ok() && p.binary_search(&b).is_ok())
            .count() as f64;
        let same_comm =
            if self.community[a as usize] == self.community[b as usize] { 0.5 } else { 0.0 };
        shared + same_comm
    }

    /// H-index of an author over the planted papers, where a paper's
    /// "citations" are proxied by its author count (bigger collaborations ≈
    /// more visible papers). Used as the role proxy of Figure 6(b)/(c).
    pub fn h_index(&self, a: NodeId) -> u32 {
        let mut cites: Vec<usize> =
            self.papers.iter().filter(|p| p.binary_search(&a).is_ok()).map(|p| p.len()).collect();
        cites.sort_unstable_by(|x, y| y.cmp(x));
        let mut h = 0u32;
        for (i, &c) in cites.iter().enumerate() {
            if c > i {
                h = (i + 1) as u32;
            } else {
                break;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_undirected() {
        let cg = community_graph(CommunityParams::default(), 1);
        assert!(cg.graph.is_symmetric());
    }

    #[test]
    fn no_self_loops() {
        let cg = community_graph(CommunityParams::default(), 2);
        assert!(cg.graph.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn deterministic() {
        let a = community_graph(CommunityParams::default(), 3);
        let b = community_graph(CommunityParams::default(), 3);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.community, b.community);
    }

    #[test]
    fn communities_are_assortative() {
        let cg = community_graph(CommunityParams::default(), 4);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in cg.graph.edges() {
            if cg.community[u as usize] == cg.community[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 2 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn relevance_counts_shared_papers() {
        let cg = community_graph(CommunityParams::default(), 5);
        // Pick a paper with >= 2 authors and check its first two authors
        // have relevance >= 1.
        let p = cg.papers.iter().find(|p| p.len() >= 2).expect("some paper");
        assert!(cg.true_relevance(p[0], p[1]) >= 1.0);
    }

    #[test]
    fn h_index_monotone_in_paper_count() {
        let cg = community_graph(CommunityParams::default(), 6);
        // An author on zero papers has h-index 0.
        if let Some(v) =
            (0..cg.graph.node_count() as NodeId).find(|&v| cg.paper_count[v as usize] == 0)
        {
            assert_eq!(cg.h_index(v), 0);
        }
        // h-index never exceeds paper count.
        for v in 0..cg.graph.node_count() as NodeId {
            assert!(cg.h_index(v) <= cg.paper_count[v as usize]);
        }
    }

    #[test]
    fn zipf_sizes_make_first_community_largest() {
        let cg = community_graph(
            CommunityParams { nodes: 2000, communities: 10, ..Default::default() },
            7,
        );
        let mut sizes = [0usize; 10];
        for &c in cg.community.iter() {
            sizes[c as usize] += 1;
        }
        let max = *sizes.iter().max().unwrap();
        assert_eq!(sizes[0], max, "community 0 should be largest under Zipf weights");
    }
}
