//! # ssr-gen — seeded synthetic graph generators
//!
//! The paper evaluates on SNAP/DBLP datasets and GTgraph synthetics, none of
//! which are available offline. This crate provides deterministic (seeded)
//! generators whose outputs preserve the *operative* properties of those
//! inputs — size, density, degree skew, DAG-ness, community overlap — as
//! argued in `DESIGN.md` §4:
//!
//! * [`fixtures`] — exact reconstructions of the paper's worked examples:
//!   the Figure 1 citation graph, the Figure 3 family tree, the two-arm path
//!   graph of Section 1.
//! * [`random`] — Erdős–Rényi `G(n, m)` and R-MAT (the generator family
//!   behind GTgraph, used for the Figure 6(g) density sweep).
//! * [`citation`] — preferential-attachment citation DAGs (CitHepTh /
//!   CitPatent stand-ins).
//! * [`community`] — planted-community undirected co-authorship graphs with
//!   power-law community sizes (DBLP / D05 / D08 / D11 stand-ins).
//! * [`special`] — paths, cycles, stars, complete bipartite graphs for tests
//!   and adversarial cases.
//!
//! All generators take an explicit `u64` seed and are reproducible across
//! runs and platforms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod citation;
pub mod community;
pub mod fixtures;
pub mod random;
pub mod special;
