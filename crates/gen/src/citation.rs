//! Preferential-attachment citation-DAG generator.
//!
//! Stand-in for the paper's CitHepTh and CitPatent datasets. Papers arrive in
//! time order; paper `v` cites `deg_out(v)` earlier papers chosen by a
//! mixture of preferential attachment (popular papers attract more
//! citations — matching the heavy-tailed in-degree of real citation graphs)
//! and recency (papers mostly cite the recent literature). All edges point
//! from later to earlier nodes, so the graph is a DAG like real citation
//! networks — the property that drives the very high "zero-SimRank" rates
//! the paper reports on CitHepTh in Figure 6(d).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssr_graph::{DiGraph, GraphBuilder, NodeId};

/// Parameters of the citation generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CitationParams {
    /// Number of papers.
    pub nodes: usize,
    /// Target mean out-degree (references per paper). Real CitHepTh has
    /// density ≈ 12.6, CitPatent ≈ 4.5 (paper's Figure 5).
    pub avg_out_degree: f64,
    /// Probability a reference is drawn preferentially (by in-degree)
    /// rather than uniformly from the recency window.
    pub preferential_prob: f64,
    /// Recency window: uniform references are drawn from the latest
    /// `recency_window` papers.
    pub recency_window: usize,
    /// Probability that a paper *copies* the reference list of a recent
    /// paper instead of sampling afresh. Real bibliographies are heavily
    /// templated (surveys, follow-up papers, canonical-citation blocks);
    /// copied reference lists are what give citation networks the duplicated
    /// in-neighbor structure that edge concentration compresses.
    pub template_prob: f64,
}

impl Default for CitationParams {
    fn default() -> Self {
        CitationParams {
            nodes: 1000,
            avg_out_degree: 8.0,
            preferential_prob: 0.6,
            recency_window: 200,
            template_prob: 0.3,
        }
    }
}

/// Generates a citation DAG. Node ids are publication order (0 = oldest);
/// every edge `(u, v)` has `u > v`.
pub fn citation_graph(params: CitationParams, seed: u64) -> DiGraph {
    assert!(params.nodes >= 2, "need at least 2 papers");
    assert!(
        (0.0..=1.0).contains(&params.preferential_prob),
        "preferential_prob must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.nodes;
    let mut b =
        GraphBuilder::with_capacity((params.avg_out_degree * n as f64) as usize).reserve_nodes(n);
    // cite_pool holds one entry per received citation plus one base entry per
    // paper — sampling from it uniformly implements "in-degree + 1"
    // preferential attachment.
    let mut cite_pool: Vec<NodeId> = Vec::with_capacity(2 * n);
    cite_pool.push(0);
    // Reference lists of recent papers, for template copying.
    let mut ref_lists: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    ref_lists.push(Vec::new());
    for v in 1..n {
        let cited: Vec<NodeId> = if rng.gen::<f64>() < params.template_prob && v > 2 {
            // Copy a recent paper's bibliography verbatim (it only cites
            // papers older than v, so the DAG property is preserved).
            let window_lo = v.saturating_sub(params.recency_window);
            let donor = rng.gen_range(window_lo..v);
            ref_lists[donor].clone()
        } else {
            // Vary per-paper reference counts around the mean (±50%).
            let lo = (params.avg_out_degree * 0.5).floor() as usize;
            let hi = (params.avg_out_degree * 1.5).ceil() as usize;
            let refs = rng.gen_range(lo..=hi.max(lo + 1)).min(v);
            let mut set = std::collections::HashSet::with_capacity(refs * 2);
            let mut guard = 0;
            while set.len() < refs && guard < refs * 30 {
                guard += 1;
                let target = if rng.gen::<f64>() < params.preferential_prob {
                    cite_pool[rng.gen_range(0..cite_pool.len())]
                } else {
                    let window_lo = v.saturating_sub(params.recency_window);
                    rng.gen_range(window_lo..v) as NodeId
                };
                if (target as usize) < v {
                    set.insert(target);
                }
            }
            let mut list: Vec<NodeId> = set.into_iter().collect();
            list.sort_unstable();
            list
        };
        for &t in &cited {
            b.push_edge(v as NodeId, t);
            cite_pool.push(t);
        }
        cite_pool.push(v as NodeId);
        ref_lists.push(cited);
    }
    b.build().expect("edges always point to earlier papers")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_dag_by_construction() {
        let g = citation_graph(CitationParams { nodes: 300, ..Default::default() }, 1);
        assert!(g.edges().all(|(u, v)| u > v), "all citations point backwards");
    }

    #[test]
    fn density_near_target() {
        let p = CitationParams { nodes: 2000, avg_out_degree: 6.0, ..Default::default() };
        let g = citation_graph(p, 2);
        let d = g.edge_count() as f64 / g.node_count() as f64;
        assert!((4.0..=8.0).contains(&d), "density {d} too far from target 6");
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = citation_graph(
            CitationParams { nodes: 3000, avg_out_degree: 8.0, ..Default::default() },
            3,
        );
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let avg = g.edge_count() as f64 / g.node_count() as f64;
        assert!((max_in as f64) > 5.0 * avg, "expected hub papers, max_in={max_in}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = CitationParams { nodes: 400, ..Default::default() };
        assert_eq!(citation_graph(p, 9), citation_graph(p, 9));
        assert_ne!(citation_graph(p, 9), citation_graph(p, 10));
    }

    #[test]
    fn oldest_paper_has_no_references() {
        let g = citation_graph(CitationParams { nodes: 100, ..Default::default() }, 4);
        assert_eq!(g.out_degree(0), 0);
    }
}
