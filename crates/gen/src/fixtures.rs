//! Exact reconstructions of the paper's worked examples.
//!
//! The Figure 1 graph is reverse-engineered from every structural fact the
//! paper states about it:
//!
//! * the in-link paths `h ← e ← a → d` and `h ← e ← a → b → f → d`
//!   (so `a→e, e→h, a→d, a→b, b→f, f→d`);
//! * `a` has no in-neighbors (`s(a, g) = 0` "as a has no in-neighbors");
//! * the symmetric paths `g ← b → i` and `g ← d → i` (so `b→g, b→i, d→g,
//!   d→i`);
//! * the Figure 4 induced bigraph: `T = {a,b,d,e,f,h,j,k}`,
//!   `B = {b,c,d,e,f,g,h,i}`, with bicliques `({b,d}, {c,g,i})` and
//!   `({e,j,k}, {h,i})`;
//! * Example 2: `I(h) = {e,j,k}` and `I(i) = {b,d} ∪ {e,j,k} ∪ {h}`.

use ssr_graph::{DiGraph, NodeId};

/// Node labels of the Figure 1 citation graph, index = node id.
pub const FIG1_LABELS: [&str; 11] = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"];

/// Node ids of the Figure 1 graph, for readable test code.
#[allow(missing_docs)]
pub mod fig1 {
    use ssr_graph::NodeId;
    pub const A: NodeId = 0;
    pub const B: NodeId = 1;
    pub const C: NodeId = 2;
    pub const D: NodeId = 3;
    pub const E: NodeId = 4;
    pub const F: NodeId = 5;
    pub const G: NodeId = 6;
    pub const H: NodeId = 7;
    pub const I: NodeId = 8;
    pub const J: NodeId = 9;
    pub const K: NodeId = 10;
}

/// The 11-node, 18-edge citation graph of Figure 1.
pub fn figure1_graph() -> DiGraph {
    use fig1::*;
    DiGraph::from_edges(
        11,
        &[
            (A, B),
            (A, D),
            (A, E),
            (B, C),
            (B, F),
            (B, G),
            (B, I),
            (D, C),
            (D, G),
            (D, I),
            (E, H),
            (E, I),
            (F, D),
            (H, I),
            (J, H),
            (J, I),
            (K, H),
            (K, I),
        ],
    )
    .expect("figure 1 graph is well-formed")
}

/// Node ids of the Figure 3 family tree.
#[allow(missing_docs)]
pub mod family {
    use ssr_graph::NodeId;
    pub const GRANDPA: NodeId = 0;
    pub const FATHER: NodeId = 1;
    pub const UNCLE: NodeId = 2;
    pub const ME: NodeId = 3;
    pub const COUSIN: NodeId = 4;
    pub const SON: NodeId = 5;
    pub const GRANDSON: NodeId = 6;
}

/// The Figure 3 family tree: edges point from parent to child
/// (Grandpa→{Father, Uncle}, Father→Me, Uncle→Cousin, Me→Son, Son→Grandson).
///
/// The paper's in-link-path argument on this graph: `ρ_A` (Me ↔ Cousin,
/// symmetric via Grandpa) should outweigh `ρ_B` (Uncle ↔ Son) which should
/// outweigh `ρ_C` (Grandpa ↔ Grandson, fully unidirectional).
pub fn family_tree() -> DiGraph {
    use family::*;
    DiGraph::from_edges(
        7,
        &[
            (GRANDPA, FATHER),
            (GRANDPA, UNCLE),
            (FATHER, ME),
            (UNCLE, COUSIN),
            (ME, SON),
            (SON, GRANDSON),
        ],
    )
    .expect("family tree is well-formed")
}

/// The Section 1 two-arm path graph
/// `a_{-n} ← … ← a_{-1} ← a_0 → a_1 → … → a_n`.
///
/// Node ids: `0..=2n`, with the root `a_0` at id `n`; `a_{-k}` is `n - k`
/// and `a_k` is `n + k`. SimRank is zero for every pair `(a_i, a_j)` with
/// `|i| ≠ |j|` — the paper's canonical "zero-similarity" example.
pub fn two_arm_path(n: usize) -> DiGraph {
    let root = n as NodeId;
    let mut edges = Vec::with_capacity(2 * n);
    for k in 0..n as NodeId {
        // left arm: a_{-k} <- a_{-(k+1)} means edge from closer-to-root
        edges.push((root - k, root - k - 1));
        edges.push((root + k, root + k + 1));
    }
    DiGraph::from_edges(2 * n + 1, &edges).expect("path graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::InducedBigraph;

    #[test]
    fn figure1_matches_stated_structure() {
        use fig1::*;
        let g = figure1_graph();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.edge_count(), 18);
        // a has no in-neighbors.
        assert_eq!(g.in_degree(A), 0);
        // I(h) = {e, j, k}.
        assert_eq!(g.in_neighbors(H), &[E, J, K]);
        // I(i) = {b, d, e, h, j, k}.
        assert_eq!(g.in_neighbors(I), &[B, D, E, H, J, K]);
        // The two in-link paths of Example 1 exist.
        assert!(g.has_edge(A, E) && g.has_edge(E, H) && g.has_edge(A, D));
        assert!(g.has_edge(A, B) && g.has_edge(B, F) && g.has_edge(F, D));
        // g <- b -> i and g <- d -> i.
        assert!(g.has_edge(B, G) && g.has_edge(B, I));
        assert!(g.has_edge(D, G) && g.has_edge(D, I));
    }

    #[test]
    fn figure1_bigraph_matches_figure4() {
        use fig1::*;
        let g = figure1_graph();
        let bg = InducedBigraph::from_graph(&g);
        assert_eq!(bg.top(), &[A, B, D, E, F, H, J, K]);
        assert_eq!(bg.bottom(), &[B, C, D, E, F, G, H, I]);
        assert_eq!(bg.edge_count(), 18);
        // Biclique ({b,d}, {c,g,i}).
        for &x in &[B, D] {
            for &y in &[C, G, I] {
                assert!(g.has_edge(x, y), "missing biclique-1 edge");
            }
        }
        // Biclique ({e,j,k}, {h,i}).
        for &x in &[E, J, K] {
            for &y in &[H, I] {
                assert!(g.has_edge(x, y), "missing biclique-2 edge");
            }
        }
    }

    #[test]
    fn figure1_zero_simrank_pairs() {
        use fig1::*;
        use ssr_graph::paths::ZeroSimRankOracle;
        let g = figure1_graph();
        let oracle = ZeroSimRankOracle::build(&g);
        // Column `SR` of the Figure 1 table: zeros...
        assert!(!oracle.is_nonzero(H, D));
        assert!(!oracle.is_nonzero(A, F));
        assert!(!oracle.is_nonzero(A, C));
        assert!(!oracle.is_nonzero(G, A));
        assert!(!oracle.is_nonzero(I, A));
        // ...and the one stated non-zero: s(i, h) = .044.
        assert!(oracle.is_nonzero(I, H));
        // g and i share sources b, d at distance 1.
        assert!(oracle.is_nonzero(G, I));
    }

    #[test]
    fn family_tree_shape() {
        use family::*;
        let g = family_tree();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.in_degree(GRANDPA), 0);
        assert_eq!(g.out_degree(GRANDSON), 0);
        // Me and Cousin share grandpa at distance 2 (symmetric path).
        assert!(ssr_graph::paths::has_symmetric_inlink_path(&g, ME, COUSIN, 3));
        // Uncle and Son share grandpa at distances 1 vs 3 (dissymmetric only).
        assert!(!ssr_graph::paths::has_symmetric_inlink_path(&g, UNCLE, SON, 6));
        assert!(ssr_graph::paths::has_dissymmetric_inlink_path(&g, UNCLE, SON, 4));
    }

    #[test]
    fn two_arm_path_structure() {
        let g = two_arm_path(3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        // Root (id 3) has no in-neighbors and out-degree 2.
        assert_eq!(g.in_degree(3), 0);
        assert_eq!(g.out_degree(3), 2);
        // Ends have out-degree 0 (id 0 and 6).
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.out_degree(6), 0);
        // a_{-1} (id 2) and a_1 (id 4) have symmetric path via the root.
        assert!(ssr_graph::paths::has_symmetric_inlink_path(&g, 2, 4, 3));
        // a_{-1} and a_2 (id 5) do not.
        assert!(!ssr_graph::paths::has_symmetric_inlink_path(&g, 2, 5, 6));
    }
}
