//! Corruption battery: every way a `.ssg` file can be damaged must
//! surface as a typed [`StoreError`] — never a panic, never a silently
//! wrong graph.

use ssr_graph::DiGraph;
use ssr_store::{StoreError, StoreReader, StoreWriter};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ssr_store_corruption");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}_{name}", std::process::id()))
}

fn sample_bytes() -> Vec<u8> {
    let g = DiGraph::from_edges(
        64,
        &(0u32..63).map(|v| (v, v + 1)).chain((0..32).map(|v| (v, v * 2))).collect::<Vec<_>>(),
    )
    .unwrap();
    let mut buf = Vec::new();
    StoreWriter::new(&g).meta("dataset", "corruption").write_to(&mut buf).unwrap();
    buf
}

/// Writes `bytes` and returns whatever opening + fully loading produces.
fn open_and_load(name: &str, bytes: &[u8]) -> Result<DiGraph, StoreError> {
    let path = scratch(name);
    std::fs::write(&path, bytes).unwrap();
    let result = StoreReader::open(&path).and_then(|mut r| r.load_full());
    std::fs::remove_file(&path).ok();
    result
}

#[test]
fn pristine_file_loads() {
    assert!(open_and_load("pristine.ssg", &sample_bytes()).is_ok());
}

#[test]
fn bad_magic_is_typed() {
    let mut bytes = sample_bytes();
    bytes[0] = b'G';
    assert_eq!(open_and_load("magic.ssg", &bytes).unwrap_err(), StoreError::BadMagic);
    // Text files are the common non-store input.
    assert_eq!(
        open_and_load("text.ssg", b"# an edge list\n0 1\n1 2\n").unwrap_err(),
        StoreError::BadMagic
    );
}

#[test]
fn version_skew_is_typed() {
    let mut bytes = sample_bytes();
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert_eq!(
        open_and_load("version.ssg", &bytes).unwrap_err(),
        StoreError::UnsupportedVersion { found: 7, supported: ssr_store::FORMAT_VERSION }
    );
}

#[test]
fn every_truncation_point_is_an_error_not_a_panic() {
    let bytes = sample_bytes();
    // Sweep the whole file: any prefix must fail loudly (magic, header,
    // table, payload truncations all land somewhere in this range).
    for len in 0..bytes.len() - 1 {
        let result = open_and_load("trunc.ssg", &bytes[..len]);
        let err = result.expect_err(&format!("prefix of {len} bytes must not load"));
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Io(_)
            ),
            "prefix {len}: unexpected error {err:?}"
        );
    }
}

#[test]
fn payload_bit_flips_hit_checksums() {
    let bytes = sample_bytes();
    // Flip one bit in every payload byte (past the header + table); the
    // per-section checksum must catch each one at read time.
    let payload_start = bytes.len() - (bytes.len() / 2); // deep inside sections
    for at in (payload_start..bytes.len()).step_by(7) {
        let mut copy = bytes.clone();
        copy[at] ^= 0x10;
        match open_and_load("flip.ssg", &copy) {
            Err(StoreError::ChecksumMismatch { .. }) => {}
            other => panic!("flip at {at}: expected checksum mismatch, got {other:?}"),
        }
    }
}

#[test]
fn tampered_section_table_is_caught() {
    let bytes = sample_bytes();
    // Lie about a section length: either the bounds check or the
    // checksum (payload window shifted) must reject it.
    let mut copy = bytes.clone();
    // First section entry's len field lives at offset 36 + 16.
    let at = 36 + 16;
    let len = u64::from_le_bytes(copy[at..at + 8].try_into().unwrap());
    copy[at..at + 8].copy_from_slice(&(len + 3).to_le_bytes());
    assert!(open_and_load("table_len.ssg", &copy).is_err());
    // Point a section past the end of the file.
    let mut copy = bytes.clone();
    let at = 36 + 8; // first entry's offset field
    copy[at..at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
    assert_eq!(
        open_and_load("table_off.ssg", &copy).unwrap_err(),
        StoreError::Truncated { context: "section payload" }
    );
}

#[test]
fn header_count_lies_are_caught() {
    let bytes = sample_bytes();
    // Inflate the header's edge count: decode must notice the deficit.
    // (The adjacency payload checksums still pass — the corruption is in
    // the checksummed-by-nothing fixed header — so this is exactly the
    // case the structural count checks exist for.)
    let mut copy = bytes.clone();
    let m = u64::from_le_bytes(copy[24..32].try_into().unwrap());
    copy[24..32].copy_from_slice(&(m + 1).to_le_bytes());
    assert!(matches!(open_and_load("m_lie.ssg", &copy).unwrap_err(), StoreError::Corrupt { .. }));
    // Shrink the node count: trailing bytes / out-of-range ids surface.
    let mut copy = bytes.clone();
    let n = u64::from_le_bytes(copy[16..24].try_into().unwrap());
    copy[16..24].copy_from_slice(&(n - 1).to_le_bytes());
    assert!(matches!(open_and_load("n_lie.ssg", &copy).unwrap_err(), StoreError::Corrupt { .. }));
}

#[test]
fn inflated_header_counts_fail_before_allocating() {
    // The fixed header is not checksummed, so a flipped high bit in n or
    // m must be rejected by the open-time bounds (node/edge costs ≥ 1
    // payload byte each) — not honored by a terabyte Vec::with_capacity.
    let bytes = sample_bytes();
    let mut copy = bytes.clone();
    copy[16..24].copy_from_slice(&(1u64 << 40).to_le_bytes()); // n = 2^40
    assert!(matches!(open_and_load("huge_n.ssg", &copy).unwrap_err(), StoreError::Corrupt { .. }));
    let mut copy = bytes.clone();
    copy[24..32].copy_from_slice(&(1u64 << 50).to_le_bytes()); // m = 2^50
    assert!(matches!(open_and_load("huge_m.ssg", &copy).unwrap_err(), StoreError::Corrupt { .. }));
    // n past the NodeId range is its own rejection, even when small
    // enough to pass the byte-cost bound on some crafted table.
    let mut copy = bytes;
    copy[16..24].copy_from_slice(&(u64::from(u32::MAX) + 2).to_le_bytes());
    assert!(matches!(
        open_and_load("n_overflows_u32.ssg", &copy).unwrap_err(),
        StoreError::Corrupt { .. }
    ));
}

#[test]
fn hostile_edge_count_in_sectionless_header_never_panics() {
    // A 36-byte file: valid magic/version, n=0, m=2^63, zero sections.
    // Open succeeds (no adjacency section to bound m against), so the
    // info accessors must tolerate absurd counts — `bits_per_edge` in
    // integer math would overflow `2 * m` — and load_full must fail
    // typed on the missing sections.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ssr_store::MAGIC);
    bytes.extend_from_slice(&ssr_store::FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes()); // flags
    bytes.extend_from_slice(&0u64.to_le_bytes()); // n
    bytes.extend_from_slice(&(1u64 << 63).to_le_bytes()); // m
    bytes.extend_from_slice(&0u32.to_le_bytes()); // section count
    let path = scratch("sectionless.ssg");
    std::fs::write(&path, &bytes).unwrap();
    let mut r = StoreReader::open(&path).unwrap();
    assert_eq!(r.bits_per_edge(), 0.0); // no adjacency sections at all
    assert_eq!(
        r.load_full().unwrap_err(),
        StoreError::MissingSection { section: ssr_store::format::SECTION_OUT }
    );
    std::fs::remove_file(&path).ok();
}

/// Replaces the payload of the section with the given id, fixing its
/// table entry (len + checksum) and shifting every later section's
/// offset — so the only inconsistency in the result is the payload the
/// test planted.
fn replace_section(buf: &[u8], id: u32, payload: &[u8]) -> Vec<u8> {
    let count = u32::from_le_bytes(buf[32..36].try_into().unwrap()) as usize;
    let entry = (0..count)
        .map(|i| 36 + 32 * i)
        .find(|&at| u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) == id)
        .expect("section present");
    let off = u64::from_le_bytes(buf[entry + 8..entry + 16].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(buf[entry + 16..entry + 24].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(buf.len() + payload.len() - len);
    out.extend_from_slice(&buf[..off]);
    out.extend_from_slice(payload);
    out.extend_from_slice(&buf[off + len..]);
    out[entry + 16..entry + 24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    out[entry + 24..entry + 32].copy_from_slice(&ssr_store_checksum(payload).to_le_bytes());
    let delta = payload.len() as i64 - len as i64;
    for i in 0..count {
        let at = 36 + 32 * i + 8;
        let o = u64::from_le_bytes(out[at..at + 8].try_into().unwrap());
        if o as usize > off {
            out[at..at + 8].copy_from_slice(&((o as i64 + delta) as u64).to_le_bytes());
        }
    }
    out
}

#[test]
fn hostile_degree_varint_is_corrupt_not_overflow() {
    // v1 blocks open with a degree varint; handcraft one claiming 2^63
    // neighbors. The edge budget check must reject it without
    // overflowing (debug builds would panic on a naive `len + degree`
    // sum).
    let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
    // 10-byte varint of 2^63, padded so the section still covers the
    // v1 header's n + m byte cost.
    let mut hostile = vec![0x80u8; 9];
    hostile.push(0x01); // sets bit 63
    hostile.extend_from_slice(&[0x00; 2]);
    let mut buf = Vec::new();
    StoreWriter::new(&g).version(1).write_to(&mut buf).unwrap();
    let spliced = replace_section(&buf, ssr_store::format::SECTION_OUT, &hostile);
    match open_and_load("hostile_degree.ssg", &spliced) {
        Err(StoreError::Corrupt { message }) => {
            assert!(message.contains("more than"), "{message}");
        }
        other => panic!("hostile degree must be Corrupt, got {other:?}"),
    }
}

#[test]
fn hostile_v2_block_is_corrupt_not_overflow() {
    // v2 blocks carry no degree varint — the offset index delimits them
    // — so the analogous attacks are hostile varints inside a block: a
    // 2^63 first-neighbor delta (must fail the range check, not wrap),
    // and a block packing more ids than the header's edge budget.
    let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
    let mut huge_first = vec![0x80u8; 9];
    huge_first.push(0x01); // varint of 2^63 ⇒ zigzag-decodes to +2^62
    let over_budget = vec![0x00u8, 0x00]; // two ids where m = 1
    for (name, payload, expect) in
        [("huge_first", &huge_first, "references node"), ("over_budget", &over_budget, "more than")]
    {
        let mut buf = Vec::new();
        StoreWriter::new(&g).write_to(&mut buf).unwrap();
        let spliced = replace_section(&buf, ssr_store::format::SECTION_OUT, payload);
        // Keep the offset index consistent with the new section length
        // so open's first/last pinning passes and the block decode
        // itself is what rejects the bytes.
        let index =
            ssr_store::EliasFano::from_monotone(&[0, payload.len() as u64, payload.len() as u64]);
        let spliced =
            replace_section(&spliced, ssr_store::format::SECTION_OUT_OFFSETS, &index.encode());
        match open_and_load("hostile_v2_block.ssg", &spliced) {
            Err(StoreError::Corrupt { message }) => {
                assert!(message.contains(expect), "{name}: {message}");
            }
            other => panic!("{name}: hostile block must be Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn lying_offset_index_is_caught_with_valid_checksums() {
    // A v2 offset index whose interior entries are shifted but whose
    // first and last entries are right, re-checksummed so no byte-level
    // integrity check can object. The shifted boundary hands node 2's
    // block to node 1, which decodes into a structurally valid — but
    // different — edge set; only the out-vs-in edge digest comparison
    // notices. The index is load-bearing for every v2 decode, so the
    // sequential loader, verify, and the random-access open must all
    // reject, typed.
    let g = DiGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let mut buf = Vec::new();
    StoreWriter::new(&g).write_to(&mut buf).unwrap();
    // True OUT payload: node 0 → [0x02], node 2 → [0x02]; offsets
    // 0,1,1,2,2. The lie moves node 2's byte into node 1's block.
    let lie = ssr_store::EliasFano::from_monotone(&[0, 1, 2, 2, 2]);
    let spliced = replace_section(&buf, ssr_store::format::SECTION_OUT_OFFSETS, &lie.encode());
    let path = scratch("offset_lie.ssg");
    std::fs::write(&path, &spliced).unwrap();
    let mut r = StoreReader::open(&path).unwrap();
    match r.load_full() {
        Err(StoreError::Corrupt { message }) => {
            assert!(message.contains("edge set"), "{message}")
        }
        other => panic!("load_full must catch the lying index, got {other:?}"),
    }
    assert!(matches!(r.verify(), Err(StoreError::Corrupt { .. })));
    assert!(matches!(ssr_store::RandomAccessStore::open(&path), Err(StoreError::Corrupt { .. })));
    std::fs::remove_file(&path).ok();
}

#[test]
fn non_bijective_permutation_is_caught_at_open() {
    // A PERM section mapping every node to 0, re-checksummed: the
    // bijection validation must reject it at open, typed.
    let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let perm = ssr_graph::Permutation::from_old2new(vec![2, 0, 1]).unwrap();
    let mut buf = Vec::new();
    StoreWriter::new(&g).permutation(perm, "bfs").write_to(&mut buf).unwrap();
    let spliced = replace_section(&buf, ssr_store::format::SECTION_PERM, &[0u8, 0, 0]);
    match open_and_load("perm_lie.ssg", &spliced) {
        Err(StoreError::Corrupt { message }) => {
            assert!(message.contains("permutation"), "{message}")
        }
        other => panic!("non-bijective permutation must be Corrupt, got {other:?}"),
    }
}

#[test]
fn permuted_store_survives_truncation_and_flip_sweeps() {
    // The same truncation + bit-flip battery, against a permuted v2
    // store (six sections including PERM): still typed errors only.
    let g = DiGraph::from_edges(
        32,
        &(0u32..31).map(|v| (v, v + 1)).chain((0..16).map(|v| (v * 2, v))).collect::<Vec<_>>(),
    )
    .unwrap();
    let perm = ssr_graph::perm::degree_order(&g);
    let mut bytes = Vec::new();
    StoreWriter::new(&g).permutation(perm, "degree").write_to(&mut bytes).unwrap();
    assert!(open_and_load("perm_pristine.ssg", &bytes).is_ok());
    for len in (0..bytes.len() - 1).step_by(3) {
        let err = open_and_load("perm_trunc.ssg", &bytes[..len])
            .expect_err(&format!("prefix of {len} bytes must not load"));
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Io(_)
            ),
            "prefix {len}: unexpected error {err:?}"
        );
    }
    let payload_start = 36 + 32 * 6;
    for at in (payload_start..bytes.len()).step_by(11) {
        let mut copy = bytes.clone();
        copy[at] ^= 0x40;
        match open_and_load("perm_flip.ssg", &copy) {
            Err(StoreError::ChecksumMismatch { .. }) | Err(StoreError::Corrupt { .. }) => {}
            other => panic!("flip at {at}: expected typed error, got {other:?}"),
        }
    }
}

/// The documented checksum construction (kept in sync with
/// `ssr-store`'s `checksum64` via the golden-value unit test there).
fn ssr_store_checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().unwrap())).wrapping_mul(PRIME);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[test]
fn missing_adjacency_section_is_typed() {
    // Handcraft a store whose table only lists the META section.
    let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
    let mut buf = Vec::new();
    StoreWriter::new(&g).write_to(&mut buf).unwrap();
    // Rewrite section ids OUT→99 so the required-section lookup fails.
    // (Entry 0 id lives at offset 36.)
    buf[36..40].copy_from_slice(&99u32.to_le_bytes());
    let err = open_and_load("missing.ssg", &buf).unwrap_err();
    assert_eq!(err, StoreError::MissingSection { section: ssr_store::format::SECTION_OUT });
}

#[test]
fn verify_walks_every_section() {
    let bytes = sample_bytes();
    let path = scratch("verify.ssg");
    std::fs::write(&path, &bytes).unwrap();
    assert!(StoreReader::open(&path).unwrap().verify().is_ok());
    // Corrupt the *last* byte (deep in the META section, which load_full
    // never touches after open): verify still catches it.
    let mut copy = bytes;
    let last = copy.len() - 1;
    copy[last] ^= 0x01;
    std::fs::write(&path, &copy).unwrap();
    // Meta is decoded at open time, so the checksum trips immediately.
    let result = StoreReader::open(&path).map(|_| ());
    assert!(
        matches!(result, Err(StoreError::ChecksumMismatch { .. })),
        "tampered meta must fail at open: {result:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn in_section_disagreeing_with_out_is_caught() {
    // Two graphs with identical degrees but different edges: splice the
    // IN section of one into the store of the other. Per-section
    // checksums pass (each section is internally pristine) — only the
    // cross-direction digest can notice.
    let g1 = DiGraph::from_edges(4, &[(0, 2), (1, 3)]).unwrap();
    let g2 = DiGraph::from_edges(4, &[(0, 3), (1, 2)]).unwrap();
    let (mut b1, mut b2) = (Vec::new(), Vec::new());
    StoreWriter::new(&g1).write_to(&mut b1).unwrap();
    StoreWriter::new(&g2).write_to(&mut b2).unwrap();
    assert_eq!(b1.len(), b2.len(), "same shape ⇒ same layout");
    // IN section: second table entry; splice payload and checksum.
    let entry = 36 + 32;
    let off = u64::from_le_bytes(b1[entry + 8..entry + 16].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(b1[entry + 16..entry + 24].try_into().unwrap()) as usize;
    let mut spliced = b1.clone();
    spliced[off..off + len].copy_from_slice(&b2[off..off + len]);
    spliced[entry + 24..entry + 32].copy_from_slice(&b2[entry + 24..entry + 32]);
    match open_and_load("spliced.ssg", &spliced) {
        Err(StoreError::Corrupt { message }) => {
            assert!(message.contains("different edge sets"), "{message}");
        }
        other => panic!("spliced directions must be caught, got {other:?}"),
    }
}
