//! Property-based round-trip tests: arbitrary graph → `.ssg` →
//! `load_full` is bit-identical, down to the engine results computed on
//! top of the reloaded graph.

use proptest::prelude::*;
use simrank_star::{QueryEngine, QueryEngineOptions, SimStarParams};
use ssr_graph::{DiGraph, GraphBuilder, NodeId};
use ssr_store::{StoreReader, StoreWriter};

fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (1usize..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m).prop_map(move |edges| {
            let mut b =
                GraphBuilder::with_capacity(edges.len()).allow_self_loops(true).reserve_nodes(n);
            b.extend_edges(edges);
            b.build().expect("self-loops allowed ⇒ build succeeds")
        })
    })
}

/// Writes to an in-memory buffer, reads back through a temp file (the
/// reader API is file-based, mirroring production use).
fn round_trip(g: &DiGraph, name: u64) -> (DiGraph, StoreReader) {
    let dir = std::env::temp_dir().join("ssr_store_props");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}_{name:016x}.ssg", std::process::id()));
    StoreWriter::new(g).meta("dataset", "prop").write_file(&path).unwrap();
    let mut reader = StoreReader::open(&path).unwrap();
    let loaded = reader.load_full().unwrap();
    std::fs::remove_file(&path).ok();
    (loaded, reader)
}

/// Cheap structural fingerprint to name temp files per case.
fn fingerprint(g: &DiGraph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (u, v) in g.edges() {
        h = h.wrapping_mul(0x100_0000_01b3) ^ ((u as u64) << 32 | v as u64);
    }
    h ^ g.node_count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reloaded graph is bit-identical: node/edge counts and every
    /// adjacency slice in both directions.
    #[test]
    fn load_full_is_bit_identical(g in arb_graph(40, 160)) {
        let (loaded, _) = round_trip(&g, fingerprint(&g));
        prop_assert_eq!(loaded.node_count(), g.node_count());
        prop_assert_eq!(loaded.edge_count(), g.edge_count());
        for v in 0..g.node_count() as NodeId {
            prop_assert_eq!(loaded.out_neighbors(v), g.out_neighbors(v));
            prop_assert_eq!(loaded.in_neighbors(v), g.in_neighbors(v));
        }
        // `PartialEq` covers the same ground; keep it as the summary.
        prop_assert_eq!(loaded, g);
    }

    /// The out-only load agrees with the full graph's out-direction.
    #[test]
    fn load_out_only_matches(g in arb_graph(32, 120)) {
        let dir = std::env::temp_dir().join("ssr_store_props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}_out_{:016x}.ssg", std::process::id(), fingerprint(&g)));
        StoreWriter::new(&g).write_file(&path).unwrap();
        let out = StoreReader::open(&path).unwrap().load_out_only().unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(out.node_count(), g.node_count());
        prop_assert_eq!(out.edge_count(), g.edge_count());
        for v in 0..g.node_count() as NodeId {
            prop_assert_eq!(out.out_neighbors(v), g.out_neighbors(v));
        }
    }

    /// Engine results on top of the reloaded graph are bitwise identical
    /// to results on the original — the store is a container, never a
    /// perturbation.
    #[test]
    fn engine_results_survive_the_round_trip(g in arb_graph(24, 80)) {
        let (loaded, _) = round_trip(&g, fingerprint(&g) ^ 1);
        let params = SimStarParams { c: 0.6, iterations: 4 };
        let opts = QueryEngineOptions { deterministic: true, ..Default::default() };
        let a = QueryEngine::with_options(&g, params, opts.clone());
        let b = QueryEngine::with_options(&loaded, params, opts);
        for q in 0..g.node_count().min(8) as NodeId {
            let ra = a.query(q);
            let rb = b.query(q);
            prop_assert_eq!(ra, rb, "query {} diverged after reload", q);
        }
    }

    /// Header statistics and metadata survive.
    #[test]
    fn header_reflects_graph(g in arb_graph(32, 120)) {
        let (_, reader) = round_trip(&g, fingerprint(&g) ^ 2);
        prop_assert_eq!(reader.node_count(), g.node_count());
        prop_assert_eq!(reader.edge_count(), g.edge_count());
        prop_assert_eq!(reader.meta("dataset"), Some("prop"));
        if g.edge_count() > 0 {
            prop_assert!(reader.bits_per_edge() > 0.0);
        }
    }
}
