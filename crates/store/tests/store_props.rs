//! Property-based round-trip tests: arbitrary graph → `.ssg` →
//! `load_full` is bit-identical, down to the engine results computed on
//! top of the reloaded graph.

use proptest::prelude::*;
use simrank_star::{QueryEngine, QueryEngineOptions, SimStarParams};
use ssr_graph::perm::{bfs_order, degree_order};
use ssr_graph::{DiGraph, GraphBuilder, NeighborAccess, NodeId};
use ssr_store::{RandomAccessStore, StoreReader, StoreWriter};
use std::sync::Arc;

fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (1usize..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m).prop_map(move |edges| {
            let mut b =
                GraphBuilder::with_capacity(edges.len()).allow_self_loops(true).reserve_nodes(n);
            b.extend_edges(edges);
            b.build().expect("self-loops allowed ⇒ build succeeds")
        })
    })
}

/// Writes to an in-memory buffer, reads back through a temp file (the
/// reader API is file-based, mirroring production use).
fn round_trip(g: &DiGraph, name: u64) -> (DiGraph, StoreReader) {
    let dir = std::env::temp_dir().join("ssr_store_props");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}_{name:016x}.ssg", std::process::id()));
    StoreWriter::new(g).meta("dataset", "prop").write_file(&path).unwrap();
    let mut reader = StoreReader::open(&path).unwrap();
    let loaded = reader.load_full().unwrap();
    std::fs::remove_file(&path).ok();
    (loaded, reader)
}

/// Cheap structural fingerprint to name temp files per case.
fn fingerprint(g: &DiGraph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (u, v) in g.edges() {
        h = h.wrapping_mul(0x100_0000_01b3) ^ ((u as u64) << 32 | v as u64);
    }
    h ^ g.node_count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reloaded graph is bit-identical: node/edge counts and every
    /// adjacency slice in both directions.
    #[test]
    fn load_full_is_bit_identical(g in arb_graph(40, 160)) {
        let (loaded, _) = round_trip(&g, fingerprint(&g));
        prop_assert_eq!(loaded.node_count(), g.node_count());
        prop_assert_eq!(loaded.edge_count(), g.edge_count());
        for v in 0..g.node_count() as NodeId {
            prop_assert_eq!(loaded.out_neighbors(v), g.out_neighbors(v));
            prop_assert_eq!(loaded.in_neighbors(v), g.in_neighbors(v));
        }
        // `PartialEq` covers the same ground; keep it as the summary.
        prop_assert_eq!(loaded, g);
    }

    /// The out-only load agrees with the full graph's out-direction.
    #[test]
    fn load_out_only_matches(g in arb_graph(32, 120)) {
        let dir = std::env::temp_dir().join("ssr_store_props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}_out_{:016x}.ssg", std::process::id(), fingerprint(&g)));
        StoreWriter::new(&g).write_file(&path).unwrap();
        let out = StoreReader::open(&path).unwrap().load_out_only().unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(out.node_count(), g.node_count());
        prop_assert_eq!(out.edge_count(), g.edge_count());
        for v in 0..g.node_count() as NodeId {
            prop_assert_eq!(out.out_neighbors(v), g.out_neighbors(v));
        }
    }

    /// Engine results on top of the reloaded graph are bitwise identical
    /// to results on the original — the store is a container, never a
    /// perturbation.
    #[test]
    fn engine_results_survive_the_round_trip(g in arb_graph(24, 80)) {
        let (loaded, _) = round_trip(&g, fingerprint(&g) ^ 1);
        let params = SimStarParams { c: 0.6, iterations: 4 };
        let opts = QueryEngineOptions { deterministic: true, ..Default::default() };
        let a = QueryEngine::with_options(&g, params, opts.clone());
        let b = QueryEngine::with_options(&loaded, params, opts);
        for q in 0..g.node_count().min(8) as NodeId {
            let ra = a.query(q);
            let rb = b.query(q);
            prop_assert_eq!(ra, rb, "query {} diverged after reload", q);
        }
    }

    /// Header statistics and metadata survive.
    #[test]
    fn header_reflects_graph(g in arb_graph(32, 120)) {
        let (_, reader) = round_trip(&g, fingerprint(&g) ^ 2);
        prop_assert_eq!(reader.node_count(), g.node_count());
        prop_assert_eq!(reader.edge_count(), g.edge_count());
        prop_assert_eq!(reader.meta("dataset"), Some("prop"));
        if g.edge_count() > 0 {
            prop_assert!(reader.bits_per_edge() > 0.0);
        }
    }

    /// Both orderings are bijections (perm ∘ inv = id in both
    /// directions), and a permuted store loads back in the original id
    /// space, bit-identical to the source graph.
    #[test]
    fn permutation_round_trips(g in arb_graph(32, 120)) {
        let dir = std::env::temp_dir().join("ssr_store_props");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, p) in [("bfs", bfs_order(&g)), ("degree", degree_order(&g))] {
            for v in 0..g.node_count() as NodeId {
                prop_assert_eq!(p.to_old(p.to_new(v)), v);
                prop_assert_eq!(p.to_new(p.to_old(v)), v);
            }
            let path = dir.join(format!(
                "{}_{name}_{:016x}.ssg",
                std::process::id(),
                fingerprint(&g)
            ));
            StoreWriter::new(&g).permutation(p, name).write_file(&path).unwrap();
            let mut r = StoreReader::open(&path).unwrap();
            prop_assert!(r.is_permuted());
            let loaded = r.load_full().unwrap();
            std::fs::remove_file(&path).ok();
            prop_assert_eq!(&loaded, &g, "{} permutation perturbed the graph", name);
        }
    }

    /// The random-access reader serves exactly the CSR's adjacency for
    /// every node and both directions — plain and permuted stores alike
    /// (the permuted store answers in the original id space).
    #[test]
    fn random_access_matches_csr(g in arb_graph(32, 120)) {
        let dir = std::env::temp_dir().join("ssr_store_props");
        std::fs::create_dir_all(&dir).unwrap();
        let fp = fingerprint(&g);
        let plain = dir.join(format!("{}_ra_{fp:016x}.ssg", std::process::id()));
        let perm = dir.join(format!("{}_rap_{fp:016x}.ssg", std::process::id()));
        StoreWriter::new(&g).write_file(&plain).unwrap();
        StoreWriter::new(&g).permutation(bfs_order(&g), "bfs").write_file(&perm).unwrap();
        for path in [&plain, &perm] {
            let store = RandomAccessStore::open(path).unwrap();
            prop_assert_eq!(store.node_count(), g.node_count());
            prop_assert_eq!(store.edge_count(), g.edge_count());
            for v in 0..g.node_count() as NodeId {
                prop_assert_eq!(store.out_neighbors_vec(v), g.out_neighbors(v));
                prop_assert_eq!(store.in_neighbors_vec(v), g.in_neighbors(v));
            }
        }
        std::fs::remove_file(&plain).ok();
        std::fs::remove_file(&perm).ok();
    }

    /// Deterministic engine rows are bitwise identical across the three
    /// backings: in-memory CSR, random-access v2 store, and a permuted
    /// random-access store with ids mapped back.
    #[test]
    fn engine_identical_across_backings(g in arb_graph(20, 60)) {
        let dir = std::env::temp_dir().join("ssr_store_props");
        std::fs::create_dir_all(&dir).unwrap();
        let fp = fingerprint(&g);
        let plain = dir.join(format!("{}_eng_{fp:016x}.ssg", std::process::id()));
        let perm = dir.join(format!("{}_engp_{fp:016x}.ssg", std::process::id()));
        StoreWriter::new(&g).write_file(&plain).unwrap();
        StoreWriter::new(&g).permutation(bfs_order(&g), "bfs").write_file(&perm).unwrap();
        let params = SimStarParams { c: 0.6, iterations: 4 };
        let opts = QueryEngineOptions { deterministic: true, ..Default::default() };
        let mem = QueryEngine::with_options(&g, params, opts.clone());
        let ra = QueryEngine::with_access(
            Arc::new(RandomAccessStore::open(&plain).unwrap()),
            params,
            opts.clone(),
        );
        let rp = QueryEngine::with_access(
            Arc::new(RandomAccessStore::open(&perm).unwrap()),
            params,
            opts,
        );
        std::fs::remove_file(&plain).ok();
        std::fs::remove_file(&perm).ok();
        for q in 0..g.node_count().min(6) as NodeId {
            let want = mem.query(q);
            prop_assert_eq!(ra.query(q), want.clone(), "mmap row {} diverged", q);
            prop_assert_eq!(rp.query(q), want, "permuted mmap row {} diverged", q);
        }
    }
}
