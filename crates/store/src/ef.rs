//! Elias-Fano encoding of monotone integer sequences.
//!
//! The `.ssg` v2 offset index stores, per adjacency direction, the `n + 1`
//! byte offsets of the per-node blocks inside the section payload. Offsets
//! are non-decreasing, so Elias-Fano gets them down to
//! `2 + ⌈log₂(u/n)⌉` bits per entry (u = section length) while still
//! answering `get(i)` in O(1): the lower `l` bits are stored verbatim, the
//! upper bits live in a unary bitvector where the `i`-th set bit sits at
//! position `(vᵢ >> l) + i`, located via sampled select.
//!
//! Hand-rolled (no crates.io access) and serialised with the same varint
//! framing as the rest of the container.

use crate::varint::{read_varint, write_varint};
use crate::StoreError;

/// Bit position of every `SELECT_STRIDE`-th set bit is sampled, bounding
/// the scan in [`EliasFano::get`] to a handful of words.
const SELECT_STRIDE: usize = 64;

/// An Elias-Fano coded monotone sequence with O(1) random access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliasFano {
    count: usize,
    universe: u64,
    l: u32,
    lower: Vec<u64>,
    upper: Vec<u64>,
    /// Bit position of the `k·SELECT_STRIDE`-th set bit of `upper`.
    samples: Vec<u64>,
}

impl EliasFano {
    /// Encodes a non-decreasing sequence. The final value defines the
    /// universe.
    ///
    /// # Panics
    /// Debug builds panic on a decreasing input; writers own their inputs,
    /// so this is a programming error, not a data error.
    pub fn from_monotone(values: &[u64]) -> EliasFano {
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input must be monotone");
        let count = values.len();
        let universe = values.last().copied().unwrap_or(0);
        let l = pick_l(universe, count);
        let mut lower = vec![0u64; (count * l as usize).div_ceil(64).max(1)];
        let upper_bits = (universe >> l) as usize + count + 1;
        let mut upper = vec![0u64; upper_bits.div_ceil(64).max(1)];
        for (i, &v) in values.iter().enumerate() {
            if l > 0 {
                let low = v & ((1u64 << l) - 1);
                let at = i * l as usize;
                lower[at / 64] |= low << (at % 64);
                if (at % 64) + l as usize > 64 {
                    lower[at / 64 + 1] |= low >> (64 - at % 64);
                }
            }
            let pos = (v >> l) as usize + i;
            upper[pos / 64] |= 1u64 << (pos % 64);
        }
        let samples = build_samples(&upper, count);
        EliasFano { count, universe, l, lower, upper, samples }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest encodable value (the final input value).
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The `i`-th value. O(1): one sampled select plus a bounded word scan.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.count, "EliasFano index {i} out of bounds ({})", self.count);
        let hi = self.select(i) - i as u64;
        (hi << self.l) | self.lower_bits(i)
    }

    /// Serialises to the section payload layout:
    /// `varint(count) varint(universe) varint(l)` then the lower and upper
    /// words, little-endian (word counts are functions of the prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.count as u64);
        write_varint(&mut out, self.universe);
        write_varint(&mut out, u64::from(self.l));
        for &w in self.lower.iter().chain(&self.upper) {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes a payload written by [`EliasFano::encode`]. `max_count`
    /// bounds allocation against hostile prefixes (callers know the
    /// expected sequence length from the store header).
    pub fn decode(bytes: &[u8], max_count: usize) -> Result<EliasFano, StoreError> {
        let corrupt =
            |message: &str| StoreError::Corrupt { message: format!("offset index: {message}") };
        let mut pos = 0usize;
        let count = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing count"))?;
        if count > max_count as u64 {
            return Err(corrupt(&format!("claims {count} entries, expected at most {max_count}")));
        }
        let count = count as usize;
        let universe = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing universe"))?;
        let l = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing bit width"))?;
        if l > 57 {
            return Err(corrupt(&format!("lower bit width {l} out of range")));
        }
        let l = l as u32;
        let lower_words = (count * l as usize).div_ceil(64).max(1);
        let upper_bits = (universe >> l) as usize + count + 1;
        let upper_words = upper_bits.div_ceil(64).max(1);
        let need = (lower_words + upper_words) * 8;
        if bytes.len() - pos != need {
            return Err(corrupt(&format!(
                "payload holds {} word bytes, layout requires {need}",
                bytes.len() - pos
            )));
        }
        let mut read_words = |k: usize| -> Vec<u64> {
            (0..k)
                .map(|_| {
                    let w = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("sized"));
                    pos += 8;
                    w
                })
                .collect()
        };
        let lower = read_words(lower_words);
        let upper = read_words(upper_words);
        let ones: usize = upper.iter().map(|w| w.count_ones() as usize).sum();
        if ones != count {
            return Err(corrupt(&format!("upper bits hold {ones} markers for {count} entries")));
        }
        let samples = build_samples(&upper, count);
        Ok(EliasFano { count, universe, l, lower, upper, samples })
    }

    /// Resident bytes of the decoded structure.
    pub fn resident_bytes(&self) -> usize {
        (self.lower.len() + self.upper.len() + self.samples.len()) * 8
            + std::mem::size_of::<EliasFano>()
    }

    /// Iterates all values in order. Amortised O(1) per value — one
    /// running scan of the upper bitvector instead of a select per
    /// entry, which is what the sequential decoders want (`get` would
    /// cost a select per node).
    pub fn iter(&self) -> EfIter<'_> {
        EfIter { ef: self, i: 0, w: 0, word: *self.upper.first().unwrap_or(&0) }
    }

    /// Bit position of the `i`-th set bit of `upper`.
    fn select(&self, i: usize) -> u64 {
        let anchor = self.samples[i / SELECT_STRIDE];
        let mut remaining = i % SELECT_STRIDE;
        let mut w = (anchor / 64) as usize;
        let mut word = self.upper[w] & (!0u64 << (anchor % 64));
        loop {
            let ones = word.count_ones() as usize;
            if remaining < ones {
                let mut x = word;
                for _ in 0..remaining {
                    x &= x - 1;
                }
                return (w as u64) * 64 + u64::from(x.trailing_zeros());
            }
            remaining -= ones;
            w += 1;
            word = self.upper[w];
        }
    }

    fn lower_bits(&self, i: usize) -> u64 {
        if self.l == 0 {
            return 0;
        }
        let at = i * self.l as usize;
        let shift = at % 64;
        let mut v = self.lower[at / 64] >> shift;
        if shift + self.l as usize > 64 {
            v |= self.lower[at / 64 + 1] << (64 - shift);
        }
        v & ((1u64 << self.l) - 1)
    }
}

/// Sequential cursor over an [`EliasFano`] sequence; see
/// [`EliasFano::iter`].
pub struct EfIter<'a> {
    ef: &'a EliasFano,
    i: usize,
    w: usize,
    word: u64,
}

impl Iterator for EfIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.i == self.ef.count {
            return None;
        }
        while self.word == 0 {
            self.w += 1;
            self.word = self.ef.upper[self.w];
        }
        let pos = (self.w as u64) * 64 + u64::from(self.word.trailing_zeros());
        self.word &= self.word - 1;
        let value = ((pos - self.i as u64) << self.ef.l) | self.ef.lower_bits(self.i);
        self.i += 1;
        Some(value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.ef.count - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for EfIter<'_> {}

/// The classic width choice: `⌊log₂(universe / count)⌋` lower bits.
fn pick_l(universe: u64, count: usize) -> u32 {
    if count == 0 || universe / count as u64 == 0 {
        0
    } else {
        (universe / count as u64).ilog2()
    }
}

fn build_samples(upper: &[u64], count: usize) -> Vec<u64> {
    let mut samples = Vec::with_capacity(count / SELECT_STRIDE + 1);
    let mut seen = 0usize;
    for (w, &word) in upper.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            if seen % SELECT_STRIDE == 0 {
                samples.push((w as u64) * 64 + u64::from(bits.trailing_zeros()));
            }
            seen += 1;
            if seen >= count {
                return samples;
            }
            bits &= bits - 1;
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64]) {
        let ef = EliasFano::from_monotone(values);
        assert_eq!(ef.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "index {i}");
        }
        assert_eq!(ef.iter().collect::<Vec<_>>(), values, "iter disagrees with get");
        let decoded = EliasFano::decode(&ef.encode(), values.len()).unwrap();
        assert_eq!(decoded, ef);
    }

    #[test]
    fn small_sequences_round_trip() {
        round_trip(&[]);
        round_trip(&[0]);
        round_trip(&[7]);
        round_trip(&[0, 0, 0]);
        round_trip(&[0, 1, 2, 3, 4, 5]);
        round_trip(&[0, 100, 100, 250, 251, 1 << 40]);
    }

    #[test]
    fn dense_and_sparse_sequences() {
        let dense: Vec<u64> = (0..5000).map(|i| i / 3).collect();
        round_trip(&dense);
        let sparse: Vec<u64> = (0..3000).map(|i| i * i * 17).collect();
        round_trip(&sparse);
        // Long runs of equal values stress select across empty buckets.
        let runs: Vec<u64> = (0..4000).map(|i| (i / 500) * 1_000_000).collect();
        round_trip(&runs);
    }

    #[test]
    fn compresses_typical_offsets() {
        // ~10 bytes per block on average: EF should land near
        // 2 + log2(10) ≈ 5-6 bits per entry, far under 64.
        let offsets: Vec<u64> = (0..10_000u64).map(|i| i * 10).collect();
        let ef = EliasFano::from_monotone(&offsets);
        let bits_per_entry = (ef.encode().len() * 8) as f64 / offsets.len() as f64;
        assert!(bits_per_entry < 8.0, "got {bits_per_entry}");
    }

    #[test]
    fn hostile_payloads_are_typed_errors() {
        let ef = EliasFano::from_monotone(&[0, 5, 9]);
        let good = ef.encode();
        // Count above the caller's bound.
        assert!(matches!(EliasFano::decode(&good, 2), Err(StoreError::Corrupt { .. })));
        // Truncated words.
        assert!(EliasFano::decode(&good[..good.len() - 1], 3).is_err());
        // Empty payload.
        assert!(EliasFano::decode(&[], 3).is_err());
        // Upper bits holding the wrong number of markers: flip one word.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x80;
        assert!(matches!(EliasFano::decode(&bad, 3), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn resident_bytes_positive() {
        let ef = EliasFano::from_monotone(&[0, 1, 2]);
        assert!(ef.resident_bytes() > 0);
    }
}
