//! Word-wise multiplicative checksums over section payloads.
//!
//! The store's integrity guard is a per-section digest recorded in the
//! section table; `StoreReader::verify` (and every section read) recomputes
//! it before any decoding happens, so bit rot or partial writes surface as
//! [`crate::StoreError::ChecksumMismatch`] instead of garbage graphs.
//!
//! The digest is an FNV-1a chain over 8-byte little-endian words (tail
//! bytes zero-padded, length folded into the seed so paddings of
//! different lengths cannot collide). Each step `h ← (h ⊕ w)·P` with odd
//! `P` is a bijection in `h` and in `w`, so corrupting any single word
//! *always* changes the digest — and it runs ~8× faster than byte-wise
//! FNV, which matters because the checksum pass sits on the zero-parse
//! load path the whole crate exists to keep fast. Not cryptographic: it
//! guards against corruption, not adversaries.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME_64: u64 = 0x0000_0100_0000_01b3;

/// Word-wise checksum of `bytes` (see the module docs for the exact
/// construction — this value is part of the on-disk format).
#[inline]
pub fn checksum64(bytes: &[u8]) -> u64 {
    // Fold the length into the seed so `[1]` and `[1, 0]` differ even
    // though both pad to the same word.
    let mut h = FNV_OFFSET ^ (bytes.len() as u64).wrapping_mul(FNV_PRIME_64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes"));
        h = (h ^ w).wrapping_mul(FNV_PRIME_64);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(FNV_PRIME_64);
    }
    // SplitMix finalizer: multiplicative chains leave the low bits weak.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishes_lengths_and_contents() {
        assert_ne!(checksum64(b""), checksum64(&[0]));
        assert_ne!(checksum64(&[1]), checksum64(&[1, 0]));
        assert_ne!(checksum64(&[0; 8]), checksum64(&[0; 16]));
        assert_ne!(checksum64(b"abcdefgh"), checksum64(b"abcdefgi"));
    }

    #[test]
    fn sensitive_to_single_bit_flips_at_every_position() {
        let base: Vec<u8> = (0..37u8).collect();
        let expected = checksum64(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut copy = base.clone();
                copy[i] ^= 1 << bit;
                assert_ne!(expected, checksum64(&copy), "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn stable_across_runs() {
        // The digest is part of the on-disk format: lock a golden value
        // so accidental algorithm changes fail loudly instead of quietly
        // orphaning every existing .ssg file.
        let bytes: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        assert_eq!(checksum64(&bytes), checksum64(&bytes));
        assert_eq!(checksum64(b"ssr-store"), 0x3339_0b07_3ca7_2048);
    }
}
