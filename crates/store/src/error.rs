//! Typed failure modes of the `.ssg` container.

use std::fmt;

/// Errors produced while writing, opening, or decoding a graph store.
///
/// Every corruption mode a file can exhibit maps to a distinct variant —
/// the corrupt-file tests pin truncation, magic, checksum, and version
/// skew to their variants so callers can report actionable messages (and
/// never see a panic from hostile bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file does not start with the `.ssg` magic bytes (it is most
    /// likely a text edge list or something else entirely).
    BadMagic,
    /// The container's format version is newer than this reader supports.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// The file ends before a promised structure does.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's recorded checksum does not match its payload.
    ChecksumMismatch {
        /// Section id (see the `SECTION_*` constants).
        section: u32,
    },
    /// A required section is absent from the section table.
    MissingSection {
        /// Section id (see the `SECTION_*` constants).
        section: u32,
    },
    /// Structurally invalid payload (bad varint, unsorted adjacency,
    /// out-of-range node id, edge-count mismatch, …).
    Corrupt {
        /// Description of the inconsistency.
        message: String,
    },
    /// An underlying I/O failure (wrapped as a string so the error stays
    /// `Clone + Eq`, matching `ssr_graph::GraphError`).
    Io(
        /// The I/O error message.
        String,
    ),
    /// A graph-level error surfaced while rebuilding the `DiGraph` (or
    /// while parsing a text edge list through the auto-detecting loader).
    Graph(
        /// The underlying graph error, rendered.
        String,
    ),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => {
                write!(f, "not a graph store: missing .ssg magic bytes")
            }
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "store format version {found} is newer than supported ({supported})")
            }
            StoreError::Truncated { context } => {
                write!(f, "store file truncated while reading {context}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section} (file corrupted?)")
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section {section} missing from the section table")
            }
            StoreError::Corrupt { message } => write!(f, "corrupt store: {message}"),
            StoreError::Io(msg) => write!(f, "I/O error: {msg}"),
            StoreError::Graph(msg) => write!(f, "graph error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl From<ssr_graph::GraphError> for StoreError {
    fn from(e: ssr_graph::GraphError) -> Self {
        StoreError::Graph(e.to_string())
    }
}
