//! LEB128 variable-length integer coding.
//!
//! The adjacency sections store node-id gaps, which on sorted real-world
//! adjacency lists are overwhelmingly small — LEB128 gets most of them
//! into one byte where the text format spends 5-8 digit characters plus a
//! separator. Hand-rolled (like the `vendor/` shims) because the build
//! runs without crates.io access.
//!
//! Public because `ssr-serve`'s binary wire codec (`ssb/1`) frames its
//! messages with the same coding — one varint implementation, one set of
//! truncation/overflow semantics across disk and wire.

/// Appends the LEB128 encoding of `value` to `out`.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 integer from `buf[*pos..]`, advancing `*pos`.
///
/// Returns `None` on truncation (the continuation bit set on the last
/// available byte) or overflow past 64 bits — both are corruption, never
/// a panic. The one-byte case (the overwhelming majority of adjacency
/// gaps) is a straight-line fast path; this function sits in the
/// inner loop of the zero-parse load.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let &first = buf.get(*pos)?;
    *pos += 1;
    if first & 0x80 == 0 {
        return Some(u64::from(first));
    }
    read_varint_slow(buf, pos, first)
}

/// Continuation of [`read_varint`] after a first byte with the
/// continuation bit set.
#[cold]
fn read_varint_slow(buf: &[u8], pos: &mut usize, first: u8) -> Option<u64> {
    let mut value = u64::from(first & 0x7f);
    let mut shift = 7u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        // The 10th byte of a u64 varint may only carry the lowest bit.
        if shift == 63 && byte > 1 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> usize {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), Some(v), "value {v}");
        assert_eq!(pos, buf.len());
        buf.len()
    }

    #[test]
    fn encodes_boundaries() {
        assert_eq!(round_trip(0), 1);
        assert_eq!(round_trip(127), 1);
        assert_eq!(round_trip(128), 2);
        assert_eq!(round_trip(16_383), 2);
        assert_eq!(round_trip(16_384), 3);
        assert_eq!(round_trip(u64::from(u32::MAX)), 5);
        assert_eq!(round_trip(u64::MAX), 10); // ⌈64/7⌉ bytes
    }

    #[test]
    fn dense_sweep_round_trips() {
        for v in (0..100_000u64).chain((0..64).map(|s| 1u64 << s)) {
            round_trip(v);
        }
    }

    #[test]
    fn truncated_stream_is_none() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 300);
        buf.truncate(1); // continuation bit set, second byte missing
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
        assert_eq!(read_varint(&[], &mut 0), None);
    }

    #[test]
    fn overlong_encoding_is_none() {
        // 11 continuation bytes can never terminate inside u64.
        let buf = [0x80u8; 11];
        assert_eq!(read_varint(&buf, &mut 0), None);
        // 10th byte carrying more than the top bit overflows.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(read_varint(&buf, &mut 0), None);
    }

    #[test]
    fn sequential_decode_advances() {
        let mut buf = Vec::new();
        for v in [5u64, 1000, 0, 77] {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        let got: Vec<u64> = std::iter::from_fn(|| read_varint(&buf, &mut pos)).take(4).collect();
        assert_eq!(got, vec![5, 1000, 0, 77]);
        assert_eq!(pos, buf.len());
    }
}
