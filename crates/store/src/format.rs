//! The `.ssg` on-disk layout: magic, header, section table.
//!
//! ```text
//! offset  size  field
//!      0     8  magic  = 89 53 53 47 0d 0a 1a 08  ("\x89SSG\r\n\x1a\x08")
//!      8     4  format version (u32 LE, 1 or 2)
//!     12     4  flags (u32 LE, reserved, 0)
//!     16     8  node count n (u64 LE)
//!     24     8  edge count m (u64 LE)
//!     32     4  section count (u32 LE)
//!     36   32k  section table: k × { id u32, reserved u32,
//!                                    offset u64, len u64, checksum u64 }
//!   ....        section payloads (offsets are absolute file offsets)
//! ```
//!
//! All integers are little-endian. Section payloads:
//!
//! * **OUT (id 1)** / **IN (id 2)** — one CSR direction: for each node
//!   `v` in `0..n`, `varint(degree)` followed by the sorted neighbor
//!   list, coded per format version:
//!   * **v1** — `varint(first)`, then `varint(gap)` per subsequent
//!     neighbor; gaps are ≥ 1 because adjacency is sorted and
//!     deduplicated.
//!   * **v2** — `varint(zigzag(first − v))` (the first neighbor is near
//!     the node itself once the graph is laid out for locality, so a
//!     signed delta from `v` is shorter than an absolute id), then
//!     `varint(gap − 1)` per subsequent neighbor (the guaranteed ≥ 1 gap
//!     is implicit, buying back one value per edge at the densest end of
//!     the varint).
//! * **META (id 3)** — `varint(count)` followed by `count` key/value
//!   pairs, each a `varint(len)`-prefixed UTF-8 string.
//! * **OUT_OFFSETS (id 4)** / **IN_OFFSETS (id 5)** — v2 only: the
//!   `n + 1` byte offsets of the per-node blocks inside the matching
//!   adjacency payload (entry `n` = payload length), Elias-Fano coded
//!   (see `ef`). This is what makes a v2 store *randomly accessible*:
//!   any node's neighbor list is one O(1) index probe plus one bounded
//!   decode, no sequential scan.
//! * **PERM (id 6)** — v2, optional: `n` varints mapping original node
//!   id → stored id (a validated bijection). Present when the graph was
//!   relabeled for cache locality at build time; readers translate ids
//!   so callers only ever see the original id space.
//!
//! Unknown section ids are skipped by readers (forward compatibility
//! inside a major version); the magic's high bit + CRLF guard against
//! text-mode mangling, the same trick as PNG.

use crate::StoreError;

/// First 8 bytes of every `.ssg` file.
pub const MAGIC: [u8; 8] = *b"\x89SSG\r\n\x1a\x08";

/// Newest format version (what the writer produces by default, and the
/// highest version readers accept).
pub const FORMAT_VERSION: u32 = 2;

/// The original absolute-first/plain-gap format, still writable for
/// compatibility via `StoreWriter::version`.
pub const FORMAT_VERSION_V1: u32 = 1;

/// Out-adjacency section id.
pub const SECTION_OUT: u32 = 1;
/// In-adjacency section id.
pub const SECTION_IN: u32 = 2;
/// Metadata section id.
pub const SECTION_META: u32 = 3;
/// Out-adjacency block-offset index (v2).
pub const SECTION_OUT_OFFSETS: u32 = 4;
/// In-adjacency block-offset index (v2).
pub const SECTION_IN_OFFSETS: u32 = 5;
/// Optional node permutation, original id → stored id (v2).
pub const SECTION_PERM: u32 = 6;

/// Byte length of the fixed header before the section table.
pub const HEADER_LEN: usize = 36;
/// Byte length of one section-table entry.
pub const SECTION_ENTRY_LEN: usize = 32;

/// One section-table entry as stored in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section id (`SECTION_OUT` / `SECTION_IN` / `SECTION_META` / future).
    pub id: u32,
    /// Absolute file offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a 64 digest of the payload.
    pub checksum: u64,
}

/// The decoded fixed header + section table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Format version from the file.
    pub version: u32,
    /// Node count `n`.
    pub nodes: u64,
    /// Edge count `m` (per direction; OUT and IN each encode `m` ids).
    pub edges: u64,
    /// Section table in file order.
    pub sections: Vec<SectionInfo>,
}

impl Header {
    /// Finds a section by id.
    pub fn section(&self, id: u32) -> Option<SectionInfo> {
        self.sections.iter().copied().find(|s| s.id == id)
    }

    /// Serializes the header + section table (the file's first
    /// `HEADER_LEN + 32·k` bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + SECTION_ENTRY_LEN * self.sections.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // flags
        out.extend_from_slice(&self.nodes.to_le_bytes());
        out.extend_from_slice(&self.edges.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&s.id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // reserved
            out.extend_from_slice(&s.offset.to_le_bytes());
            out.extend_from_slice(&s.len.to_le_bytes());
            out.extend_from_slice(&s.checksum.to_le_bytes());
        }
        out
    }

    /// Parses the header from the start of `bytes` (which may be just the
    /// file's prefix). Checks magic and version before anything else.
    pub fn decode(bytes: &[u8]) -> Result<Header, StoreError> {
        if bytes.len() < MAGIC.len() {
            return Err(StoreError::Truncated { context: "magic bytes" });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated { context: "fixed header" });
        }
        let version = read_u32(bytes, 8);
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        if version == 0 {
            return Err(StoreError::Corrupt { message: "format version 0".into() });
        }
        let nodes = read_u64(bytes, 16);
        let edges = read_u64(bytes, 24);
        let count = read_u32(bytes, 32) as usize;
        let table_end = HEADER_LEN + SECTION_ENTRY_LEN * count;
        if bytes.len() < table_end {
            return Err(StoreError::Truncated { context: "section table" });
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_LEN + SECTION_ENTRY_LEN * i;
            sections.push(SectionInfo {
                id: read_u32(bytes, at),
                offset: read_u64(bytes, at + 8),
                len: read_u64(bytes, at + 16),
                checksum: read_u64(bytes, at + 24),
            });
        }
        Ok(Header { version, nodes, edges, sections })
    }

    /// Total byte length of the serialized header + table.
    pub fn encoded_len(section_count: usize) -> usize {
        HEADER_LEN + SECTION_ENTRY_LEN * section_count
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked by caller"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked by caller"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        Header {
            version: FORMAT_VERSION,
            nodes: 42,
            edges: 99,
            sections: vec![
                SectionInfo { id: SECTION_OUT, offset: 92, len: 10, checksum: 7 },
                SectionInfo { id: SECTION_IN, offset: 102, len: 11, checksum: 8 },
            ],
        }
    }

    #[test]
    fn header_round_trips() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(bytes.len(), Header::encoded_len(2));
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn section_lookup() {
        let h = sample();
        assert_eq!(h.section(SECTION_IN).unwrap().offset, 102);
        assert_eq!(h.section(SECTION_META), None);
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample().encode();
        bytes[0] = b'P';
        assert_eq!(Header::decode(&bytes), Err(StoreError::BadMagic));
        // A text edge list is BadMagic, not a crash.
        assert_eq!(Header::decode(b"# nodes: 3\n0 1\n"), Err(StoreError::BadMagic));
    }

    #[test]
    fn short_prefix_is_truncated() {
        let bytes = sample().encode();
        assert_eq!(
            Header::decode(&bytes[..4]),
            Err(StoreError::Truncated { context: "magic bytes" })
        );
        assert_eq!(
            Header::decode(&bytes[..20]),
            Err(StoreError::Truncated { context: "fixed header" })
        );
        assert_eq!(
            Header::decode(&bytes[..HEADER_LEN + 3]),
            Err(StoreError::Truncated { context: "section table" })
        );
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample().encode();
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            Header::decode(&bytes),
            Err(StoreError::UnsupportedVersion { found: 9, supported: FORMAT_VERSION })
        );
    }

    #[test]
    fn both_supported_versions_decode() {
        for version in [FORMAT_VERSION_V1, FORMAT_VERSION] {
            let mut h = sample();
            h.version = version;
            assert_eq!(Header::decode(&h.encode()).unwrap().version, version);
        }
    }
}
