//! Serialising a [`DiGraph`] into the `.ssg` container.

use crate::checksum::checksum64;
use crate::ef::EliasFano;
use crate::format::{
    Header, SectionInfo, FORMAT_VERSION, FORMAT_VERSION_V1, SECTION_IN, SECTION_IN_OFFSETS,
    SECTION_META, SECTION_OUT, SECTION_OUT_OFFSETS, SECTION_PERM,
};
use crate::varint::write_varint;
use crate::{meta_keys, StoreError};
use ssr_graph::perm::permute_graph;
use ssr_graph::{DiGraph, NodeId, Permutation};
use std::io::Write;
use std::path::Path;

/// Streams a graph into the binary store format.
///
/// Encoding happens one node at a time (no intermediate text, no edge
/// vector): each adjacency direction becomes a delta-gap varint section,
/// checksummed as it is built. Memory overhead is the compressed payload
/// itself — typically well below the graph's in-memory CSR size.
///
/// By default the writer produces format v2: tighter adjacency coding
/// (signed first-neighbor delta, implicit minimum gap, no per-node degree
/// byte — the offset index delimits blocks and varints self-delimit
/// within them), plus Elias-Fano block-offset indexes that make the file
/// randomly accessible without materialising a CSR. [`StoreWriter::version`] selects v1 for
/// compatibility, and [`StoreWriter::permutation`] relabels the stored
/// layout for locality while recording the bijection so readers keep
/// presenting original ids.
///
/// ```
/// use ssr_graph::DiGraph;
/// use ssr_store::{StoreReader, StoreWriter};
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// let dir = std::env::temp_dir().join("ssr_store_doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("doc.ssg");
/// StoreWriter::new(&g).meta("dataset", "doc-example").write_file(&path).unwrap();
/// let loaded = StoreReader::open(&path).unwrap().load_full().unwrap();
/// assert_eq!(loaded, g);
/// ```
pub struct StoreWriter<'g> {
    graph: &'g DiGraph,
    meta: Vec<(String, String)>,
    version: u32,
    perm: Option<(Permutation, String)>,
}

impl<'g> StoreWriter<'g> {
    /// A writer for `graph` with no metadata, targeting the current
    /// format version.
    pub fn new(graph: &'g DiGraph) -> Self {
        StoreWriter { graph, meta: Vec::new(), version: FORMAT_VERSION, perm: None }
    }

    /// Attaches one metadata key/value pair (chainable). Conventional keys
    /// are in [`crate::meta_keys`]; arbitrary pairs are fine.
    pub fn meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.push((key.into(), value.into()));
        self
    }

    /// Selects the container version to write (1 or 2; default 2).
    /// Validation happens at write time so the builder stays infallible.
    pub fn version(mut self, version: u32) -> Self {
        self.version = version;
        self
    }

    /// Stores the graph under the given node relabeling (original id →
    /// stored id), recording the bijection in a PERM section so readers
    /// translate back transparently. `order` names how the permutation
    /// was derived (e.g. `bfs`, `degree`) and lands in the metadata.
    /// Requires v2 (checked at write time).
    pub fn permutation(mut self, perm: Permutation, order: impl Into<String>) -> Self {
        self.perm = Some((perm, order.into()));
        self
    }

    /// Writes the container to `w`. Returns the total bytes written.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<u64, StoreError> {
        match self.version {
            FORMAT_VERSION_V1 => {
                if self.perm.is_some() {
                    return Err(StoreError::Corrupt {
                        message: "permuted layouts require format v2 (v1 has no PERM section)"
                            .into(),
                    });
                }
                self.write_v1(&mut w)
            }
            FORMAT_VERSION => self.write_v2(&mut w),
            other => {
                Err(StoreError::UnsupportedVersion { found: other, supported: FORMAT_VERSION })
            }
        }
    }

    /// Writes the container to a file (created or truncated).
    pub fn write_file<P: AsRef<Path>>(&self, path: P) -> Result<u64, StoreError> {
        let file = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(file))
    }

    fn write_v1<W: Write>(&self, w: &mut W) -> Result<u64, StoreError> {
        let g = self.graph;
        let n = g.node_count();
        let out_payload = encode_adjacency_v1(n, |v| g.out_neighbors(v));
        let in_payload = encode_adjacency_v1(n, |v| g.in_neighbors(v));
        let meta_payload = encode_meta(&self.meta);
        let payloads: Vec<(u32, Vec<u8>)> = vec![
            (SECTION_OUT, out_payload),
            (SECTION_IN, in_payload),
            (SECTION_META, meta_payload),
        ];
        emit(w, FORMAT_VERSION_V1, n as u64, g.edge_count() as u64, &payloads)
    }

    fn write_v2<W: Write>(&self, w: &mut W) -> Result<u64, StoreError> {
        let n = self.graph.node_count();
        if let Some((perm, _)) = &self.perm {
            if perm.len() != n {
                return Err(StoreError::Corrupt {
                    message: format!(
                        "permutation covers {} ids but the graph has {n} nodes",
                        perm.len()
                    ),
                });
            }
        }
        // Relabel up front if a layout permutation was requested; readers
        // undo the relabeling via the PERM section.
        let permuted;
        let g: &DiGraph = match &self.perm {
            Some((perm, _)) => {
                permuted = permute_graph(self.graph, perm);
                &permuted
            }
            None => self.graph,
        };
        let (out_payload, out_offsets) = encode_adjacency_v2(n, |v| g.out_neighbors(v));
        let (in_payload, in_offsets) = encode_adjacency_v2(n, |v| g.in_neighbors(v));
        let out_index = EliasFano::from_monotone(&out_offsets).encode();
        let in_index = EliasFano::from_monotone(&in_offsets).encode();

        // Record what v1 coding of the *same layout* would have cost, so
        // `store info` can report a pure coding delta without rebuilding
        // (for permuted stores the layout gain shows up in bits/id, not
        // here).
        let v1_bytes = count_adjacency_v1(n, |v| g.out_neighbors(v))
            + count_adjacency_v1(n, |v| g.in_neighbors(v));
        let mut meta = self.meta.clone();
        meta.push((meta_keys::V1_ADJACENCY_BYTES.into(), v1_bytes.to_string()));
        if let Some((_, order)) = &self.perm {
            meta.push((meta_keys::PERM_ORDER.into(), order.clone()));
        }

        let mut payloads: Vec<(u32, Vec<u8>)> = vec![
            (SECTION_OUT, out_payload),
            (SECTION_IN, in_payload),
            (SECTION_OUT_OFFSETS, out_index),
            (SECTION_IN_OFFSETS, in_index),
        ];
        if let Some((perm, _)) = &self.perm {
            let mut p = Vec::new();
            for old in 0..n as NodeId {
                write_varint(&mut p, u64::from(perm.to_new(old)));
            }
            payloads.push((SECTION_PERM, p));
        }
        payloads.push((SECTION_META, encode_meta(&meta)));
        emit(w, FORMAT_VERSION, n as u64, g.edge_count() as u64, &payloads)
    }
}

/// Lays out the header + section table + payloads and writes them.
fn emit<W: Write>(
    w: &mut W,
    version: u32,
    nodes: u64,
    edges: u64,
    payloads: &[(u32, Vec<u8>)],
) -> Result<u64, StoreError> {
    // Section payloads land immediately after the header + table, in
    // table order; skipping a section is one seek for the reader.
    let mut offset = Header::encoded_len(payloads.len()) as u64;
    let mut sections = Vec::with_capacity(payloads.len());
    for (id, payload) in payloads {
        sections.push(SectionInfo {
            id: *id,
            offset,
            len: payload.len() as u64,
            checksum: checksum64(payload),
        });
        offset += payload.len() as u64;
    }
    let header = Header { version, nodes, edges, sections };
    w.write_all(&header.encode())?;
    for (_, payload) in payloads {
        w.write_all(payload)?;
    }
    w.flush()?;
    Ok(offset)
}

/// One CSR direction as a delta-gap varint stream: per node,
/// `varint(degree)`, then `varint(first)` and `varint(gap)` for the rest.
/// Gaps are ≥ 1 because adjacency lists are sorted and deduplicated.
fn encode_adjacency_v1<'a>(n: usize, neighbors: impl Fn(NodeId) -> &'a [NodeId]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in 0..n as NodeId {
        let list = neighbors(v);
        write_varint(&mut out, list.len() as u64);
        let mut prev = 0u64;
        for (i, &t) in list.iter().enumerate() {
            let t = u64::from(t);
            if i == 0 {
                write_varint(&mut out, t);
            } else {
                write_varint(&mut out, t - prev);
            }
            prev = t;
        }
    }
    out
}

/// Byte count [`encode_adjacency_v1`] would produce, without building it.
fn count_adjacency_v1<'a>(n: usize, neighbors: impl Fn(NodeId) -> &'a [NodeId]) -> u64 {
    let mut bytes = 0u64;
    for v in 0..n as NodeId {
        let list = neighbors(v);
        bytes += varint_len(list.len() as u64);
        let mut prev = 0u64;
        for (i, &t) in list.iter().enumerate() {
            let t = u64::from(t);
            bytes += varint_len(if i == 0 { t } else { t - prev });
            prev = t;
        }
    }
    bytes
}

/// v2 coding: per node, `varint(zigzag(first − v))`, then
/// `varint(gap − 1)` per subsequent neighbor. No degree varint — varints
/// are self-delimiting and the Elias-Fano offset index bounds every
/// block, so the degree is simply the number of varints in the block
/// (an empty block is a zero-length byte range). Also returns the
/// `n + 1` block byte offsets feeding that index.
fn encode_adjacency_v2<'a>(
    n: usize,
    neighbors: impl Fn(NodeId) -> &'a [NodeId],
) -> (Vec<u8>, Vec<u64>) {
    let mut out = Vec::new();
    let mut offsets = Vec::with_capacity(n + 1);
    for v in 0..n as NodeId {
        offsets.push(out.len() as u64);
        let list = neighbors(v);
        let mut prev = 0u64;
        for (i, &t) in list.iter().enumerate() {
            let t = u64::from(t);
            if i == 0 {
                write_varint(&mut out, zigzag(t as i64 - i64::from(v)));
            } else {
                write_varint(&mut out, t - prev - 1);
            }
            prev = t;
        }
    }
    offsets.push(out.len() as u64);
    (out, offsets)
}

/// ZigZag map: interleaves signed values so small magnitudes of either
/// sign get short varints (0 → 0, −1 → 1, 1 → 2, −2 → 3, …).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Metadata section: `varint(count)`, then length-prefixed UTF-8 key and
/// value per pair.
fn encode_meta(meta: &[(String, String)]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, meta.len() as u64);
    for (k, v) in meta {
        for s in [k, v] {
            write_varint(&mut out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
    out
}

/// Encoded length of one varint.
fn varint_len(mut v: u64) -> u64 {
    let mut len = 1;
    while v >= 0x80 {
        v >>= 7;
        len += 1;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_coding_is_compact_on_dense_runs() {
        // Node 0 points at 1..=100: first value + 99 gaps of 1, all
        // single-byte varints, plus the degree byte.
        let g = DiGraph::from_edges(101, &(1..=100).map(|v| (0, v)).collect::<Vec<_>>()).unwrap();
        let payload = encode_adjacency_v1(101, |v| g.out_neighbors(v));
        // 1 (degree=100 is two bytes? 100 < 128 so one) + 100 ids + 100
        // empty-degree bytes for nodes 1..=100.
        assert_eq!(payload.len(), 1 + 100 + 100);
        assert_eq!(count_adjacency_v1(101, |v| g.out_neighbors(v)), payload.len() as u64);
    }

    #[test]
    fn v2_coding_beats_v1_on_local_runs() {
        // Each node points at its successor run: v2's signed first delta
        // and implicit gap shave bytes on exactly this shape.
        let edges: Vec<(NodeId, NodeId)> =
            (0..200u32).flat_map(|v| (1..=3).map(move |d| (v, (v + d) % 203))).collect();
        let g = DiGraph::from_edges(203, &edges).unwrap();
        let v1 = encode_adjacency_v1(203, |v| g.out_neighbors(v));
        let (v2, offsets) = encode_adjacency_v2(203, |v| g.out_neighbors(v));
        assert!(v2.len() < v1.len(), "v2 {} vs v1 {}", v2.len(), v1.len());
        assert_eq!(offsets.len(), 204);
        assert_eq!(*offsets.last().unwrap(), v2.len() as u64);
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
    }

    #[test]
    fn empty_graph_writes_v2_with_five_sections() {
        let g = DiGraph::from_edges(0, &[]).unwrap();
        let mut buf = Vec::new();
        let written = StoreWriter::new(&g).write_to(&mut buf).unwrap();
        assert_eq!(written as usize, buf.len());
        let h = Header::decode(&buf).unwrap();
        assert_eq!(h.version, FORMAT_VERSION);
        // OUT, IN, OUT_OFFSETS, IN_OFFSETS, META.
        assert_eq!(h.sections.len(), 5);
        assert_eq!((h.nodes, h.edges), (0, 0));
    }

    #[test]
    fn v1_still_writes_three_sections() {
        let g = DiGraph::from_edges(0, &[]).unwrap();
        let mut buf = Vec::new();
        StoreWriter::new(&g).version(FORMAT_VERSION_V1).write_to(&mut buf).unwrap();
        let h = Header::decode(&buf).unwrap();
        assert_eq!(h.version, FORMAT_VERSION_V1);
        assert_eq!(h.sections.len(), 3);
    }

    #[test]
    fn invalid_version_and_v1_perm_are_typed_errors() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            StoreWriter::new(&g).version(3).write_to(&mut buf),
            Err(StoreError::UnsupportedVersion { found: 3, .. })
        ));
        let perm = Permutation::identity(2);
        assert!(matches!(
            StoreWriter::new(&g).version(1).permutation(perm, "bfs").write_to(&mut buf),
            Err(StoreError::Corrupt { .. })
        ));
        let wrong_size = Permutation::identity(5);
        assert!(matches!(
            StoreWriter::new(&g).permutation(wrong_size, "bfs").write_to(&mut buf),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn meta_encodes_pairs_in_order() {
        let payload = encode_meta(&[("a".into(), "xy".into()), ("k".into(), String::new())]);
        // count=2, then "a"(1+1) "xy"(1+2) "k"(1+1) ""(1+0)
        assert_eq!(payload, vec![2, 1, b'a', 2, b'x', b'y', 1, b'k', 0]);
    }
}
