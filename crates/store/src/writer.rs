//! Serialising a [`DiGraph`] into the `.ssg` container.

use crate::checksum::checksum64;
use crate::format::{Header, SectionInfo, FORMAT_VERSION, SECTION_IN, SECTION_META, SECTION_OUT};
use crate::varint::write_varint;
use crate::StoreError;
use ssr_graph::{DiGraph, NodeId};
use std::io::Write;
use std::path::Path;

/// Streams a graph into the binary store format.
///
/// Encoding happens one node at a time (no intermediate text, no edge
/// vector): each adjacency direction becomes a delta-gap varint section,
/// checksummed as it is built. Memory overhead is the compressed payload
/// itself — typically well below the graph's in-memory CSR size.
///
/// ```
/// use ssr_graph::DiGraph;
/// use ssr_store::{StoreReader, StoreWriter};
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// let dir = std::env::temp_dir().join("ssr_store_doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("doc.ssg");
/// StoreWriter::new(&g).meta("dataset", "doc-example").write_file(&path).unwrap();
/// let loaded = StoreReader::open(&path).unwrap().load_full().unwrap();
/// assert_eq!(loaded, g);
/// ```
pub struct StoreWriter<'g> {
    graph: &'g DiGraph,
    meta: Vec<(String, String)>,
}

impl<'g> StoreWriter<'g> {
    /// A writer for `graph` with no metadata.
    pub fn new(graph: &'g DiGraph) -> Self {
        StoreWriter { graph, meta: Vec::new() }
    }

    /// Attaches one metadata key/value pair (chainable). Conventional keys
    /// are in [`crate::meta_keys`]; arbitrary pairs are fine.
    pub fn meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.push((key.into(), value.into()));
        self
    }

    /// Writes the container to `w`. Returns the total bytes written.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<u64, StoreError> {
        let g = self.graph;
        let n = g.node_count();
        let out_payload = encode_adjacency(n, |v| g.out_neighbors(v));
        let in_payload = encode_adjacency(n, |v| g.in_neighbors(v));
        let meta_payload = encode_meta(&self.meta);

        // Section payloads land immediately after the header + table, in
        // table order; skipping a section is one seek for the reader.
        let payloads: [(u32, &Vec<u8>); 3] =
            [(SECTION_OUT, &out_payload), (SECTION_IN, &in_payload), (SECTION_META, &meta_payload)];
        let mut offset = Header::encoded_len(payloads.len()) as u64;
        let mut sections = Vec::with_capacity(payloads.len());
        for (id, payload) in payloads {
            sections.push(SectionInfo {
                id,
                offset,
                len: payload.len() as u64,
                checksum: checksum64(payload),
            });
            offset += payload.len() as u64;
        }
        let header = Header {
            version: FORMAT_VERSION,
            nodes: n as u64,
            edges: g.edge_count() as u64,
            sections,
        };
        w.write_all(&header.encode())?;
        for (_, payload) in payloads {
            w.write_all(payload)?;
        }
        w.flush()?;
        Ok(offset)
    }

    /// Writes the container to a file (created or truncated).
    pub fn write_file<P: AsRef<Path>>(&self, path: P) -> Result<u64, StoreError> {
        let file = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(file))
    }
}

/// One CSR direction as a delta-gap varint stream: per node,
/// `varint(degree)`, then `varint(first)` and `varint(gap)` for the rest.
/// Gaps are ≥ 1 because adjacency lists are sorted and deduplicated.
fn encode_adjacency<'a>(n: usize, neighbors: impl Fn(NodeId) -> &'a [NodeId]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in 0..n as NodeId {
        let list = neighbors(v);
        write_varint(&mut out, list.len() as u64);
        let mut prev = 0u64;
        for (i, &t) in list.iter().enumerate() {
            let t = u64::from(t);
            if i == 0 {
                write_varint(&mut out, t);
            } else {
                write_varint(&mut out, t - prev);
            }
            prev = t;
        }
    }
    out
}

/// Metadata section: `varint(count)`, then length-prefixed UTF-8 key and
/// value per pair.
fn encode_meta(meta: &[(String, String)]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, meta.len() as u64);
    for (k, v) in meta {
        for s in [k, v] {
            write_varint(&mut out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_coding_is_compact_on_dense_runs() {
        // Node 0 points at 1..=100: first value + 99 gaps of 1, all
        // single-byte varints, plus the degree byte.
        let g = DiGraph::from_edges(101, &(1..=100).map(|v| (0, v)).collect::<Vec<_>>()).unwrap();
        let payload = encode_adjacency(101, |v| g.out_neighbors(v));
        // 1 (degree=100 is two bytes? 100 < 128 so one) + 100 ids + 100
        // empty-degree bytes for nodes 1..=100.
        assert_eq!(payload.len(), 1 + 100 + 100);
    }

    #[test]
    fn empty_graph_writes_and_has_three_sections() {
        let g = DiGraph::from_edges(0, &[]).unwrap();
        let mut buf = Vec::new();
        let written = StoreWriter::new(&g).write_to(&mut buf).unwrap();
        assert_eq!(written as usize, buf.len());
        let h = Header::decode(&buf).unwrap();
        assert_eq!(h.sections.len(), 3);
        assert_eq!((h.nodes, h.edges), (0, 0));
    }

    #[test]
    fn meta_encodes_pairs_in_order() {
        let payload = encode_meta(&[("a".into(), "xy".into()), ("k".into(), String::new())]);
        // count=2, then "a"(1+1) "xy"(1+2) "k"(1+1) ""(1+0)
        assert_eq!(payload, vec![2, 1, b'a', 2, b'x', b'y', 1, b'k', 0]);
    }
}
