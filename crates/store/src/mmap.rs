//! Read-only file regions: memory-mapped when the platform allows it,
//! positional reads otherwise.
//!
//! This is the only module in the crate allowed to use `unsafe` — a
//! minimal `mmap(2)`/`munmap(2)` FFI binding (the toolchain here has no
//! crates.io access, so no `memmap2`). Everything above it sees a safe
//! [`Region`] that hands out byte ranges; whether those bytes come from
//! the page cache via a mapping or from `pread` is an implementation
//! detail. Set `SSR_STORE_NO_MMAP=1` to force the positional-read
//! fallback (tests exercise both paths with it).

use std::fs::File;
use std::io;
use std::path::Path;

/// Environment switch forcing the positional-read fallback.
pub(crate) const NO_MMAP_ENV: &str = "SSR_STORE_NO_MMAP";

/// A read-only view of a file's bytes.
pub(crate) enum Region {
    /// The whole file mapped into the address space; reads are slice
    /// accesses and residency is the kernel's problem.
    Mapped(Mapped),
    /// Positional reads against the file descriptor.
    Fallback { file: File, len: u64 },
}

impl Region {
    /// Opens `path`, preferring a memory map. Zero-length files and
    /// mapping failures quietly use the fallback; so does
    /// `SSR_STORE_NO_MMAP=1`.
    pub(crate) fn open(path: &Path) -> io::Result<Region> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let forced_off = std::env::var(NO_MMAP_ENV).is_ok_and(|v| v == "1");
        if len > 0 && !forced_off {
            if let Some(mapped) = Mapped::map(&file, len)? {
                return Ok(Region::Mapped(mapped));
            }
        }
        Ok(Region::Fallback { file, len })
    }

    /// Total length of the underlying file.
    pub(crate) fn len(&self) -> u64 {
        match self {
            Region::Mapped(m) => m.len as u64,
            Region::Fallback { len, .. } => *len,
        }
    }

    /// Whether reads go through a memory mapping.
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(self, Region::Mapped(_))
    }

    /// Runs `f` over the bytes at `offset..offset + len`. Mapped regions
    /// pass a direct slice; the fallback reads into a transient buffer.
    pub(crate) fn with_bytes<R>(
        &self,
        offset: u64,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> io::Result<R> {
        let end = offset.checked_add(len as u64).filter(|&e| e <= self.len());
        if end.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("range {offset}+{len} past region of {} bytes", self.len()),
            ));
        }
        match self {
            Region::Mapped(m) => Ok(f(&m.as_slice()[offset as usize..offset as usize + len])),
            Region::Fallback { file, .. } => {
                let mut buf = vec![0u8; len];
                read_exact_at(file, &mut buf, offset)?;
                Ok(f(&buf))
            }
        }
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    // Windows `seek_read` moves the cursor, but Region never relies on
    // cursor position, so plain seek + read is fine there too.
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub(super) const PROT_READ: c_int = 1;
    pub(super) const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub(super) fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub(super) fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// An owned read-only mapping of a whole file.
pub(crate) struct Mapped {
    #[cfg(unix)]
    ptr: *const u8,
    len: usize,
}

// The mapping is immutable for its whole lifetime (PROT_READ, private),
// so shared references from any thread are fine.
#[allow(unsafe_code)]
unsafe impl Send for Mapped {}
#[allow(unsafe_code)]
unsafe impl Sync for Mapped {}

impl Mapped {
    /// Maps `file` read-only. Returns `Ok(None)` when the platform call
    /// fails (callers fall back to reads rather than erroring).
    #[cfg(unix)]
    #[allow(unsafe_code)]
    fn map(file: &File, len: u64) -> io::Result<Option<Mapped>> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        // SAFETY: fd is a valid open descriptor for the whole call; a
        // PROT_READ + MAP_PRIVATE mapping of `len` bytes at a
        // kernel-chosen address aliases nothing we hand out mutably. The
        // pointer is only dereferenced within `len` while `self` is
        // alive, and unmapped exactly once in `Drop`.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == usize::MAX as *mut _ {
            return Ok(None);
        }
        Ok(Some(Mapped { ptr: ptr as *const u8, len }))
    }

    #[cfg(not(unix))]
    fn map(_file: &File, _len: u64) -> io::Result<Option<Mapped>> {
        Ok(None)
    }

    #[cfg(unix)]
    #[allow(unsafe_code)]
    fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr..ptr+len is a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    #[cfg(not(unix))]
    fn as_slice(&self) -> &[u8] {
        unreachable!("no mapping exists on this platform")
    }
}

#[cfg(unix)]
impl Drop for Mapped {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        // SAFETY: exactly the region mmap returned, unmapped once.
        unsafe {
            sys::munmap(self.ptr as *mut _, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ssr_store_mmap_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    #[test]
    fn mapped_and_fallback_agree() {
        let path = tmp("agree.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let region = Region::open(&path).unwrap();
        let fallback = {
            let file = File::open(&path).unwrap();
            let len = file.metadata().unwrap().len();
            Region::Fallback { file, len }
        };
        assert_eq!(region.len(), payload.len() as u64);
        for (offset, len) in [(0usize, 16usize), (255, 1), (9_000, 1_000), (0, 10_000)] {
            let a = region.with_bytes(offset as u64, len, |b| b.to_vec()).unwrap();
            let b = fallback.with_bytes(offset as u64, len, |b| b.to_vec()).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, payload[offset..offset + len].to_vec());
        }
    }

    #[test]
    fn out_of_range_reads_are_errors() {
        let path = tmp("range.bin");
        std::fs::write(&path, [1, 2, 3]).unwrap();
        let region = Region::open(&path).unwrap();
        assert!(region.with_bytes(2, 2, |_| ()).is_err());
        assert!(region.with_bytes(u64::MAX, 1, |_| ()).is_err());
        assert!(region.with_bytes(3, 0, |b| b.len()).unwrap() == 0);
    }

    #[test]
    fn empty_file_uses_fallback() {
        let path = tmp("empty.bin");
        std::fs::write(&path, []).unwrap();
        let region = Region::open(&path).unwrap();
        assert!(!region.is_mapped());
        assert_eq!(region.len(), 0);
    }
}
