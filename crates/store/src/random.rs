//! Random access into a `.ssg` v2 store without materialising a CSR.
//!
//! [`RandomAccessStore`] keeps only O(n) state resident — per-direction
//! degree arrays, the Elias-Fano offset indexes, the optional layout
//! permutation, and a bounded LRU of decoded rows — while the compressed
//! adjacency stays on disk, reached through a memory map (or positional
//! reads, see `mmap`). Any node's neighbor list is one O(1) index probe
//! plus one bounded varint decode of that node's block alone.
//!
//! The store implements [`NeighborAccess`] in the **original** id space:
//! for permuted files each request maps through the stored layout and the
//! decoded row is mapped back and re-sorted before being cached, so
//! engines see bit-identical adjacency regardless of the on-disk order.
//!
//! Open cost is one streaming pass over both adjacency sections: it
//! checksums them, proves every block decodes and sits exactly where the
//! offset index claims, and collects the degree arrays. After that no
//! code path can hit corrupt bytes (short of the file being rewritten
//! underneath the open handle, which panics rather than returning wrong
//! neighbors).

use crate::checksum::checksum64;
use crate::format::{Header, SectionInfo, SECTION_IN, SECTION_OUT};
use crate::mmap::Region;
use crate::reader::unzigzag;
use crate::varint::read_varint;
use crate::{EliasFano, StoreError, StoreReader};
use ssr_graph::{NeighborAccess, NodeId, Permutation};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Tuning knobs for [`RandomAccessStore::open_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomAccessOptions {
    /// Byte budget for the decoded-row cache. `None` picks a default of
    /// one eighth of the graph's estimated CSR footprint, clamped to
    /// 256 KiB..=64 MiB — small enough that a store-backed engine stays
    /// well under half the in-memory graph, large enough to keep hot
    /// rows decoded.
    pub cache_bytes: Option<usize>,
}

/// A `.ssg` v2 file served node-by-node straight off the compressed
/// bytes.
pub struct RandomAccessStore {
    region: Region,
    n: usize,
    m: usize,
    out: DirectionState,
    inc: DirectionState,
    perm: Option<Permutation>,
    meta: Vec<(String, String)>,
    cache: RowCache,
    /// Resident bytes that never change after open: degree arrays,
    /// offset indexes, permutation maps.
    fixed_bytes: usize,
}

struct DirectionState {
    /// Absolute file offset of the adjacency payload.
    payload_offset: u64,
    index: EliasFano,
    /// Degrees in the original id space.
    degree: Vec<u32>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Out = 0,
    In = 1,
}

impl RandomAccessStore {
    /// Opens `path` with default options.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<RandomAccessStore, StoreError> {
        Self::open_with(path, RandomAccessOptions::default())
    }

    /// Opens `path`: header/index/permutation validation via
    /// [`StoreReader::open`], then one streaming scan per adjacency
    /// section (checksum + per-block structure + offset-index agreement)
    /// that also collects the degree arrays.
    pub fn open_with<P: AsRef<Path>>(
        path: P,
        options: RandomAccessOptions,
    ) -> Result<RandomAccessStore, StoreError> {
        let reader = StoreReader::open(&path)?;
        if reader.version() < 2 {
            return Err(StoreError::Corrupt {
                message: format!(
                    "random access needs a v2 store (this file is v{}); rebuild it with \
                     `store build`",
                    reader.version()
                ),
            });
        }
        let parts = reader.into_parts();
        let (header, meta, out_index, in_index, perm) =
            (parts.header, parts.meta, parts.out_index, parts.in_index, parts.perm);
        let out_info = section(&header, SECTION_OUT)?;
        let in_info = section(&header, SECTION_IN)?;
        // Present whenever the adjacency section is — StoreReader::open
        // enforced that for v2 files.
        let out_index = out_index.expect("v2 open validated the out-offset index");
        let in_index = in_index.expect("v2 open validated the in-offset index");
        let n = header.nodes as usize;
        let m = header.edges as usize;

        let region = Region::open(path.as_ref()).map_err(StoreError::from)?;
        for info in [&out_info, &in_info] {
            if info.offset.checked_add(info.len).is_none_or(|end| end > region.len()) {
                return Err(StoreError::Truncated { context: "section payload" });
            }
        }
        let (out_deg, out_digest) = scan_direction(&region, out_info, &out_index, n, m, Dir::Out)?;
        let (in_deg, in_digest) = scan_direction(&region, in_info, &in_index, n, m, Dir::In)?;
        if out_digest != in_digest {
            return Err(StoreError::Corrupt {
                message: "out- and in-adjacency sections describe different edge sets".into(),
            });
        }
        let (out_degree, in_degree) = match &perm {
            None => (out_deg, in_deg),
            Some(p) => {
                let remap = |stored: Vec<u32>| -> Vec<u32> {
                    (0..n as NodeId).map(|old| stored[p.to_new(old) as usize]).collect()
                };
                (remap(out_deg), remap(in_deg))
            }
        };

        let budget = options.cache_bytes.unwrap_or_else(|| {
            // One eighth of the CSR this store replaces.
            let csr = 16 * (n + 1) + 8 * m;
            (csr / 8).clamp(256 << 10, 64 << 20)
        });
        let fixed_bytes = (out_degree.len() + in_degree.len()) * 4
            + out_index.resident_bytes()
            + in_index.resident_bytes()
            + perm.as_ref().map_or(0, |p| p.len() * 8);
        Ok(RandomAccessStore {
            region,
            n,
            m,
            out: DirectionState {
                payload_offset: out_info.offset,
                index: out_index,
                degree: out_degree,
            },
            inc: DirectionState {
                payload_offset: in_info.offset,
                index: in_index,
                degree: in_degree,
            },
            perm,
            meta,
            cache: RowCache::new(budget),
            fixed_bytes,
        })
    }

    /// All metadata pairs from the container.
    pub fn metadata(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Looks up one metadata value.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether the stored layout is relabeled (ids are mapped back
    /// transparently either way).
    pub fn is_permuted(&self) -> bool {
        self.perm.is_some()
    }

    /// Whether adjacency reads go through a memory mapping (as opposed
    /// to positional reads).
    pub fn is_mapped(&self) -> bool {
        self.region.is_mapped()
    }

    /// The decoded-row cache budget in bytes.
    pub fn cache_budget_bytes(&self) -> usize {
        self.cache.budget()
    }

    /// Resident heap bytes right now: degree arrays + offset indexes +
    /// permutation + currently cached rows. The mapped file is not
    /// counted — the kernel pages it in and out on demand.
    pub fn resident_bytes(&self) -> usize {
        self.fixed_bytes + self.cache.bytes()
    }

    /// The decoded, original-id-space, ascending row for `v`.
    fn row(&self, dir: Dir, v: NodeId) -> Arc<Vec<NodeId>> {
        assert!((v as usize) < self.n, "node {v} out of range ({} nodes)", self.n);
        if let Some(hit) = self.cache.get(dir as u8, v) {
            return hit;
        }
        let state = match dir {
            Dir::Out => &self.out,
            Dir::In => &self.inc,
        };
        let stored = self.perm.as_ref().map_or(v, |p| p.to_new(v));
        let start = state.index.get(stored as usize);
        let end = state.index.get(stored as usize + 1);
        let mut ids: Vec<NodeId> = Vec::new();
        // Open-time validation proved every block decodes cleanly and the
        // index tells the truth; a failure here means the file changed
        // underneath the open handle, and panicking beats silently
        // computing on garbage adjacency.
        self.region
            .with_bytes(state.payload_offset + start, (end - start) as usize, |bytes| {
                decode_block(bytes, stored, self.n, &mut ids)
            })
            .expect("store file became unreadable after open")
            .expect("store block changed after open-time validation");
        if let Some(p) = &self.perm {
            for w in ids.iter_mut() {
                *w = p.to_old(*w);
            }
            ids.sort_unstable();
        }
        let row = Arc::new(ids);
        self.cache.insert(dir as u8, v, Arc::clone(&row));
        row
    }
}

impl NeighborAccess for RandomAccessStore {
    fn node_count(&self) -> usize {
        self.n
    }

    fn edge_count(&self) -> usize {
        self.m
    }

    fn out_degree(&self, v: NodeId) -> usize {
        self.out.degree[v as usize] as usize
    }

    fn in_degree(&self, v: NodeId) -> usize {
        self.inc.degree[v as usize] as usize
    }

    fn for_each_out(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &w in self.row(Dir::Out, v).iter() {
            f(w);
        }
    }

    fn for_each_in(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &w in self.row(Dir::In, v).iter() {
            f(w);
        }
    }

    fn resident_bytes(&self) -> usize {
        RandomAccessStore::resident_bytes(self)
    }
}

fn section(header: &Header, id: u32) -> Result<SectionInfo, StoreError> {
    header.section(id).ok_or(StoreError::MissingSection { section: id })
}

/// One streaming pass over an adjacency section: checksum, every block
/// decoded at exactly the byte range its index entry claims, total id
/// count against the header. Returns stored-space degrees plus the
/// order-independent edge-set digest — with no degree varints the offset
/// index is load-bearing, so the caller cross-checks the two directions'
/// digests to prove both sections (and both indexes) describe one edge
/// set.
fn scan_direction(
    region: &Region,
    info: SectionInfo,
    index: &EliasFano,
    n: usize,
    m: usize,
    dir: Dir,
) -> Result<(Vec<u32>, u64), StoreError> {
    region
        .with_bytes(info.offset, info.len as usize, |payload| {
            if checksum64(payload) != info.checksum {
                return Err(StoreError::ChecksumMismatch { section: info.id });
            }
            let mut degrees: Vec<u32> = Vec::with_capacity(n);
            let mut digest = 0u64;
            let mut total = 0usize;
            let mut scratch: Vec<NodeId> = Vec::new();
            // Walk the index sequentially — `get` would pay a select
            // per node on what is a full linear pass.
            let mut bounds = index.iter();
            let mut start = bounds.next().expect("open validated the index holds n + 1 entries");
            for p in 0..n {
                let end = bounds.next().expect("open validated the index holds n + 1 entries");
                if start > end || end > payload.len() as u64 {
                    return Err(StoreError::Corrupt {
                        message: format!(
                            "offset index for section {} claims block {p} spans {start}..{end} \
                             in a {}-byte payload",
                            info.id,
                            payload.len()
                        ),
                    });
                }
                scratch.clear();
                decode_block(&payload[start as usize..end as usize], p as NodeId, n, &mut scratch)
                    .map_err(|e| StoreError::Corrupt {
                        message: format!("section {} block {p}: {e}", info.id),
                    })?;
                total += scratch.len();
                if total > m {
                    return Err(StoreError::Corrupt {
                        message: format!(
                            "section {} holds more than the {m} ids the header promises",
                            info.id
                        ),
                    });
                }
                for &w in &scratch {
                    digest ^= match dir {
                        Dir::Out => ssr_graph::edge_digest(p as NodeId, w),
                        Dir::In => ssr_graph::edge_digest(w, p as NodeId),
                    };
                }
                degrees.push(scratch.len() as u32);
                start = end;
            }
            if total != m {
                return Err(StoreError::Corrupt {
                    message: format!(
                        "section {} decodes {total} ids but the header promises {m}",
                        info.id
                    ),
                });
            }
            Ok((degrees, digest))
        })
        .map_err(StoreError::from)?
}

/// Decodes one v2 adjacency block (`varint(zigzag(first − node))`, then
/// `varint(gap − 1)`…) spanning `bytes` exactly — there is no degree
/// varint; the block's byte range (from the offset index) delimits it and
/// the degree is the number of varints inside. Ids come out ascending in
/// the stored space.
fn decode_block(
    bytes: &[u8],
    node: NodeId,
    n: usize,
    out: &mut Vec<NodeId>,
) -> Result<(), StoreError> {
    let corrupt = |message: String| StoreError::Corrupt { message };
    let mut pos = 0usize;
    let mut prev = 0u64;
    let mut first = true;
    while pos < bytes.len() {
        let delta = read_varint(bytes, &mut pos)
            .ok_or_else(|| corrupt(format!("block of node {node} ends inside a varint")))?;
        let value = if first {
            first = false;
            let signed = unzigzag(delta);
            let value = i64::from(node)
                .checked_add(signed)
                .ok_or_else(|| corrupt(format!("adjacency of node {node} overflows")))?;
            if value < 0 {
                return Err(corrupt(format!(
                    "adjacency of node {node} references negative id {value}"
                )));
            }
            value as u64
        } else {
            prev.checked_add(delta)
                .and_then(|x| x.checked_add(1))
                .ok_or_else(|| corrupt(format!("adjacency of node {node} overflows")))?
        };
        if value >= n as u64 {
            return Err(corrupt(format!(
                "adjacency of node {node} references node {value} >= {n}"
            )));
        }
        out.push(value as NodeId);
        prev = value;
    }
    Ok(())
}

/// A sharded, byte-bounded cache of decoded rows with lazy LRU eviction:
/// hits stamp entries with a per-shard tick; when a shard overflows its
/// slice of the budget, the oldest-stamped entries go until the shard is
/// at half budget (so eviction is amortised, not per-insert).
struct RowCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    budget: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, CacheEntry>,
    bytes: usize,
    tick: u64,
}

struct CacheEntry {
    row: Arc<Vec<NodeId>>,
    stamp: u64,
    cost: usize,
}

const CACHE_SHARDS: usize = 16;
/// Approximate per-entry bookkeeping cost (hash slot + Arc + stamps).
const ENTRY_OVERHEAD: usize = 64;

impl RowCache {
    fn new(budget: usize) -> RowCache {
        RowCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (budget / CACHE_SHARDS).max(ENTRY_OVERHEAD),
            budget,
        }
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn key(dir: u8, v: NodeId) -> u64 {
        (u64::from(dir) << 32) | u64::from(v)
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // Fibonacci hash so consecutive node ids spread across shards.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % CACHE_SHARDS]
    }

    fn get(&self, dir: u8, v: NodeId) -> Option<Arc<Vec<NodeId>>> {
        let key = Self::key(dir, v);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.map.get_mut(&key)?;
        entry.stamp = tick;
        Some(Arc::clone(&entry.row))
    }

    fn insert(&self, dir: u8, v: NodeId, row: Arc<Vec<NodeId>>) {
        let key = Self::key(dir, v);
        let cost = row.len() * std::mem::size_of::<NodeId>() + ENTRY_OVERHEAD;
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let stamp = shard.tick;
        if let Some(old) = shard.map.insert(key, CacheEntry { row, stamp, cost }) {
            shard.bytes -= old.cost;
        }
        shard.bytes += cost;
        if shard.bytes > self.shard_budget {
            // Evict oldest-stamped entries down to half budget (possibly
            // including the row just inserted, if it alone dwarfs the
            // shard — the caller already holds its Arc).
            let mut by_age: Vec<(u64, u64, usize)> =
                shard.map.iter().map(|(&k, e)| (e.stamp, k, e.cost)).collect();
            by_age.sort_unstable();
            for (_, k, cost) in by_age {
                if shard.bytes <= self.shard_budget / 2 {
                    break;
                }
                shard.map.remove(&k);
                shard.bytes -= cost;
            }
        }
    }

    fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreWriter;
    use ssr_graph::perm::{bfs_order, degree_order};
    use ssr_graph::DiGraph;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ssr_store_random_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    fn sample_graph() -> DiGraph {
        let mut edges = Vec::new();
        for v in 0..40u32 {
            edges.push((v, (v * 7 + 3) % 40));
            edges.push((v, (v * 11 + 1) % 40));
            if v % 3 == 0 {
                edges.push((v, v)); // self-loops exercise the zigzag path
            }
        }
        DiGraph::from_edges(40, &edges).unwrap()
    }

    fn assert_matches_graph(store: &RandomAccessStore, g: &DiGraph) {
        assert_eq!(NeighborAccess::node_count(store), g.node_count());
        assert_eq!(NeighborAccess::edge_count(store), g.edge_count());
        for v in 0..g.node_count() as NodeId {
            assert_eq!(store.out_neighbors_vec(v), g.out_neighbors(v), "out of {v}");
            assert_eq!(store.in_neighbors_vec(v), g.in_neighbors(v), "in of {v}");
            assert_eq!(store.out_degree(v), g.out_degree(v));
            assert_eq!(store.in_degree(v), g.in_degree(v));
        }
    }

    #[test]
    fn plain_store_serves_exact_adjacency() {
        let g = sample_graph();
        let path = tmp("plain.ssg");
        StoreWriter::new(&g).write_file(&path).unwrap();
        let store = RandomAccessStore::open(&path).unwrap();
        assert!(!store.is_permuted());
        assert_matches_graph(&store, &g);
        // Second sweep hits the row cache.
        assert_matches_graph(&store, &g);
        assert!(store.resident_bytes() > 0);
    }

    #[test]
    fn permuted_store_serves_original_id_space() {
        let g = sample_graph();
        for (order, perm) in [("bfs", bfs_order(&g)), ("degree", degree_order(&g))] {
            let path = tmp(&format!("perm_{order}.ssg"));
            StoreWriter::new(&g).permutation(perm, order).write_file(&path).unwrap();
            let store = RandomAccessStore::open(&path).unwrap();
            assert!(store.is_permuted());
            assert_matches_graph(&store, &g);
        }
    }

    #[test]
    fn fallback_reads_match_mmap() {
        let g = sample_graph();
        let path = tmp("fallback.ssg");
        StoreWriter::new(&g).write_file(&path).unwrap();
        // Force the positional-read path via the env override; the env
        // var is only read at open time, so restore it immediately.
        std::env::set_var(crate::mmap::NO_MMAP_ENV, "1");
        let store = RandomAccessStore::open(&path);
        std::env::remove_var(crate::mmap::NO_MMAP_ENV);
        let store = store.unwrap();
        assert!(!store.is_mapped());
        assert_matches_graph(&store, &g);
    }

    #[test]
    fn v1_store_is_refused_with_typed_error() {
        let g = sample_graph();
        let path = tmp("v1.ssg");
        StoreWriter::new(&g).version(1).write_file(&path).unwrap();
        match RandomAccessStore::open(&path) {
            Err(StoreError::Corrupt { message }) => assert!(message.contains("v2")),
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("v1 store must be refused"),
        }
    }

    #[test]
    fn tiny_cache_budget_still_serves_correctly() {
        let g = sample_graph();
        let path = tmp("tiny_cache.ssg");
        StoreWriter::new(&g).write_file(&path).unwrap();
        let store = RandomAccessStore::open_with(
            &path,
            RandomAccessOptions { cache_bytes: Some(ENTRY_OVERHEAD) },
        )
        .unwrap();
        assert_matches_graph(&store, &g);
        assert_matches_graph(&store, &g);
        assert!(store.resident_bytes() < store.fixed_bytes + store.cache_budget_bytes() * 2);
    }

    #[test]
    fn resident_bytes_stay_under_csr_footprint() {
        let g = sample_graph();
        let path = tmp("resident.ssg");
        StoreWriter::new(&g).write_file(&path).unwrap();
        let store = RandomAccessStore::open(&path).unwrap();
        // Touch everything, then compare against the CSR it replaces.
        for v in 0..g.node_count() as NodeId {
            store.out_neighbors_vec(v);
            store.in_neighbors_vec(v);
        }
        // On a toy graph constants dominate; the invariant worth pinning
        // is that cached bytes respect the budget.
        assert!(store.cache.bytes() <= store.cache_budget_bytes());
    }

    #[test]
    fn row_cache_evicts_by_recency() {
        let cache = RowCache::new(CACHE_SHARDS * (ENTRY_OVERHEAD + 16));
        for v in 0..200u32 {
            cache.insert(0, v, Arc::new(vec![v]));
        }
        let bytes = cache.bytes();
        assert!(bytes > 0 && bytes <= CACHE_SHARDS * (ENTRY_OVERHEAD + 16));
    }
}
