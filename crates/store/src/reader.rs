//! Loading graphs back out of the `.ssg` container.

use crate::checksum::checksum64;
use crate::format::{Header, SectionInfo, SECTION_IN, SECTION_META, SECTION_OUT};
use crate::varint::read_varint;
use crate::StoreError;
use ssr_graph::{DiGraph, NodeId};
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// A handle on an opened store file.
///
/// [`StoreReader::open`] reads and validates only the header, section
/// table, and (small) metadata section; adjacency payloads stay on disk
/// until a load method asks for them. [`StoreReader::load_full`] is one
/// sequential read plus an in-place gap decode — no text parsing, no
/// re-sort; [`StoreReader::load_out_only`] seeks straight to the OUT
/// section via the table and never touches the in-adjacency bytes.
pub struct StoreReader {
    file: std::fs::File,
    file_len: u64,
    header: Header,
    meta: Vec<(String, String)>,
}

/// Just the out-direction of a stored graph (what
/// [`StoreReader::load_out_only`] returns): forward-walk workloads (RWR
/// push, reachability probes, degree stats) skip decoding — and reading —
/// the in-adjacency section entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutAdjacency {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl OutAdjacency {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The sorted successor list `O(v)`.
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// `|O(v)|`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }
}

/// What [`StoreReader::verify`] reports after checking every section.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Sections checked (checksum + structural decode where applicable).
    pub sections: usize,
    /// Total payload bytes across sections.
    pub payload_bytes: u64,
    /// Node count from the header.
    pub nodes: usize,
    /// Edge count from the header.
    pub edges: usize,
    /// Stored adjacency bits per directed edge, counting **both**
    /// directions' payloads against `2m` stored ids (comparable to the
    /// in-memory CSR's 32 bits/id and to webgraph-style numbers).
    pub bits_per_edge: f64,
}

impl StoreReader {
    /// Opens a store file: validates magic, version, section-table bounds,
    /// and the metadata section. Adjacency payloads are not read yet.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<StoreReader, StoreError> {
        let mut file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        // One bounded read covers magic + fixed header + section table.
        let mut prefix = vec![0u8; (Header::encoded_len(0)).min(file_len as usize)];
        file.read_exact(&mut prefix)?;
        let count = match Header::decode(&prefix) {
            Ok(h) => h.sections.len(), // 0-section file: already complete
            Err(StoreError::Truncated { .. }) if prefix.len() >= Header::encoded_len(0) => {
                // Table extends past the fixed header: read the rest.
                u32::from_le_bytes(prefix[32..36].try_into().expect("fixed header present"))
                    as usize
            }
            Err(e) => return Err(e),
        };
        let full_len = Header::encoded_len(count);
        if (file_len as usize) < full_len {
            return Err(StoreError::Truncated { context: "section table" });
        }
        prefix.resize(full_len, 0);
        file.read_exact(&mut prefix[Header::encoded_len(0)..])?;
        let header = Header::decode(&prefix)?;
        // The fixed header carries no checksum, so its counts must be
        // sanity-bounded *before* anything allocates from them: node ids
        // must fit `NodeId`, and every node (degree varint) and edge
        // (≥ 1 gap byte) costs at least one payload byte in each
        // adjacency section — a flipped high bit in n or m fails here
        // instead of driving a terabyte `Vec::with_capacity`.
        if header.nodes > u64::from(u32::MAX) + 1 {
            return Err(StoreError::Corrupt {
                message: format!("header claims {} nodes (ids must fit u32)", header.nodes),
            });
        }
        for s in &header.sections {
            let end = s.offset.checked_add(s.len);
            if s.offset < full_len as u64 || end.is_none() || end.unwrap() > file_len {
                return Err(StoreError::Truncated { context: "section payload" });
            }
            if (s.id == SECTION_OUT || s.id == SECTION_IN)
                && header.nodes.checked_add(header.edges).is_none_or(|cost| cost > s.len)
            {
                return Err(StoreError::Corrupt {
                    message: format!(
                        "header claims n={} m={} but section {} holds only {} bytes",
                        header.nodes, header.edges, s.id, s.len
                    ),
                });
            }
        }
        let mut reader = StoreReader { file, file_len, header, meta: Vec::new() };
        reader.meta = match reader.header.section(SECTION_META) {
            Some(info) => decode_meta(&reader.read_section(info)?)?,
            None => Vec::new(),
        };
        Ok(reader)
    }

    /// Node count from the header.
    pub fn node_count(&self) -> usize {
        self.header.nodes as usize
    }

    /// Edge count from the header.
    pub fn edge_count(&self) -> usize {
        self.header.edges as usize
    }

    /// Format version of the file.
    pub fn version(&self) -> u32 {
        self.header.version
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The section table, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.header.sections
    }

    /// All metadata pairs, in written order.
    pub fn metadata(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Looks up one metadata value.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Stored adjacency bits per directed edge across both directions
    /// (`0` for edgeless graphs).
    pub fn bits_per_edge(&self) -> f64 {
        let adjacency_bytes: u64 = [SECTION_OUT, SECTION_IN]
            .iter()
            .filter_map(|&id| self.header.section(id))
            .map(|s| s.len)
            .sum();
        if self.header.edges == 0 {
            return 0.0;
        }
        // Both sections together hold 2m ids; report bits per stored id
        // so the number is directly comparable to the 32-bit in-memory id.
        // Float arithmetic throughout: a hostile header's m can be any
        // u64, and `2 * m` in integers would overflow (this accessor runs
        // on merely *opened* stores, before any load validates m).
        (adjacency_bytes as f64 * 8.0) / (2.0 * self.header.edges as f64)
    }

    /// Reads one section payload and verifies its checksum.
    fn read_section(&mut self, info: SectionInfo) -> Result<Vec<u8>, StoreError> {
        self.file.seek(SeekFrom::Start(info.offset))?;
        let mut payload = vec![0u8; info.len as usize];
        self.file.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated { context: "section payload" }
            } else {
                StoreError::Io(e.to_string())
            }
        })?;
        if checksum64(&payload) != info.checksum {
            return Err(StoreError::ChecksumMismatch { section: info.id });
        }
        Ok(payload)
    }

    fn required(&self, id: u32) -> Result<SectionInfo, StoreError> {
        self.header.section(id).ok_or(StoreError::MissingSection { section: id })
    }

    /// Decodes the full graph: both CSR directions gap-decoded straight
    /// into [`DiGraph`] arrays.
    ///
    /// The decode itself establishes every structural invariant
    /// (sortedness and id range fall out of gap decoding; counts are
    /// checked against the header), and an order-independent digest
    /// accumulated over both directions proves they describe the same
    /// edge set — so assembly goes through [`DiGraph::from_csr_trusted`]
    /// without a third validation pass over the arrays.
    pub fn load_full(&mut self) -> Result<DiGraph, StoreError> {
        let n = self.node_count();
        let m = self.edge_count();
        let out_info = self.required(SECTION_OUT)?;
        let in_info = self.required(SECTION_IN)?;
        let (out_offsets, out_targets, out_digest) =
            decode_adjacency(&self.read_section(out_info)?, n, m, Direction::Out)?;
        let (in_offsets, in_sources, in_digest) =
            decode_adjacency(&self.read_section(in_info)?, n, m, Direction::In)?;
        if out_digest != in_digest {
            return Err(StoreError::Corrupt {
                message: "out- and in-adjacency sections describe different edge sets".into(),
            });
        }
        Ok(DiGraph::from_csr_trusted(n, out_offsets, out_targets, in_offsets, in_sources))
    }

    /// Decodes only the out-direction, skipping the in-adjacency section
    /// entirely (one seek via the section table).
    pub fn load_out_only(&mut self) -> Result<OutAdjacency, StoreError> {
        let n = self.node_count();
        let m = self.edge_count();
        let info = self.required(SECTION_OUT)?;
        let (offsets, targets, _) =
            decode_adjacency(&self.read_section(info)?, n, m, Direction::Out)?;
        Ok(OutAdjacency { n, offsets, targets })
    }

    /// Checks every section's checksum and fully decodes both adjacency
    /// directions (including the cross-direction consistency digest).
    pub fn verify(&mut self) -> Result<VerifyReport, StoreError> {
        // Checksum the sections the structural pass below won't read
        // anyway (META, future/unknown ids) — `load_full` checksums the
        // two adjacency payloads as it reads them, and re-reading the
        // largest sections twice would double verify's I/O for no
        // added coverage.
        for info in self.header.sections.clone() {
            if info.id != SECTION_OUT && info.id != SECTION_IN {
                self.read_section(info)?;
            }
        }
        // Structural pass: a decode catches what checksums cannot (a
        // checksum only proves the bytes are the ones written).
        let g = self.load_full()?;
        if g.node_count() != self.node_count() || g.edge_count() != self.edge_count() {
            return Err(StoreError::Corrupt {
                message: format!(
                    "header claims n={} m={} but payload decodes to n={} m={}",
                    self.node_count(),
                    self.edge_count(),
                    g.node_count(),
                    g.edge_count()
                ),
            });
        }
        Ok(VerifyReport {
            sections: self.header.sections.len(),
            payload_bytes: self.header.sections.iter().map(|s| s.len).sum(),
            nodes: g.node_count(),
            edges: g.edge_count(),
            bits_per_edge: self.bits_per_edge(),
        })
    }
}

/// Which adjacency direction a section encodes — determines how the
/// `(source, target)` pair is formed for the cross-direction digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Section lists successors: edge is `(node, decoded id)`.
    Out,
    /// Section lists predecessors: edge is `(decoded id, node)`.
    In,
}

impl Direction {
    fn name(self) -> &'static str {
        match self {
            Direction::Out => "out",
            Direction::In => "in",
        }
    }
}

/// Decodes one gap-coded CSR direction, validating everything a hostile
/// payload could get wrong *during* the decode: truncation, zero gaps
/// (sortedness), id range, and the exact count the header promises.
/// Returns the offsets, the adjacency ids, and the direction's edge-set
/// digest.
fn decode_adjacency(
    payload: &[u8],
    n: usize,
    m: usize,
    direction: Direction,
) -> Result<(Vec<usize>, Vec<NodeId>, u64), StoreError> {
    let side = direction.name();
    let corrupt = |message: String| StoreError::Corrupt { message };
    let mut offsets = Vec::with_capacity(n + 1);
    let mut adjacency: Vec<NodeId> = Vec::with_capacity(m);
    let mut digest = 0u64;
    offsets.push(0);
    let mut pos = 0usize;
    for v in 0..n {
        let degree = read_varint(payload, &mut pos)
            .ok_or_else(|| corrupt(format!("{side}-section ends inside node {v}'s degree")))?;
        // Budget check in subtraction form: `len + degree` could overflow
        // on a hostile 10-byte degree varint, `m - len` cannot (the
        // invariant `len <= m` holds throughout).
        if degree > (m - adjacency.len()) as u64 {
            return Err(corrupt(format!(
                "{side}-section holds more than the {m} ids the header promises"
            )));
        }
        let degree = degree as usize;
        let mut prev = 0u64;
        for i in 0..degree {
            let delta = read_varint(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("{side}-section ends inside node {v}'s list")))?;
            let value = if i == 0 {
                delta
            } else {
                if delta == 0 {
                    return Err(corrupt(format!(
                        "{side}-adjacency of node {v} has a zero gap (duplicate neighbor)"
                    )));
                }
                prev.checked_add(delta)
                    .ok_or_else(|| corrupt(format!("{side}-adjacency of node {v} overflows")))?
            };
            if value >= n as u64 {
                return Err(corrupt(format!(
                    "{side}-adjacency of node {v} references node {value} >= {n}"
                )));
            }
            // Same mixer DiGraph::from_csr validates with, so the debug
            // cross-check and this inline check agree on "same edge set".
            digest ^= match direction {
                Direction::Out => ssr_graph::edge_digest(v as NodeId, value as NodeId),
                Direction::In => ssr_graph::edge_digest(value as NodeId, v as NodeId),
            };
            adjacency.push(value as NodeId);
            prev = value;
        }
        offsets.push(adjacency.len());
    }
    if pos != payload.len() {
        return Err(corrupt(format!(
            "{side}-section has {} trailing bytes after node {n}",
            payload.len() - pos
        )));
    }
    if adjacency.len() != m {
        return Err(corrupt(format!(
            "{side}-section decodes {} ids but the header promises {m}",
            adjacency.len()
        )));
    }
    Ok((offsets, adjacency, digest))
}

/// Decodes the metadata section written by the writer.
fn decode_meta(payload: &[u8]) -> Result<Vec<(String, String)>, StoreError> {
    let corrupt = |message: &str| StoreError::Corrupt { message: message.into() };
    let mut pos = 0usize;
    let count =
        read_varint(payload, &mut pos).ok_or_else(|| corrupt("meta section missing count"))?;
    let mut meta = Vec::new();
    for _ in 0..count {
        let mut read_string = || -> Result<String, StoreError> {
            let len = read_varint(payload, &mut pos)
                .ok_or_else(|| corrupt("meta string missing length"))?
                as usize;
            let end = pos.checked_add(len).filter(|&e| e <= payload.len());
            let end = end.ok_or_else(|| corrupt("meta string runs past the section"))?;
            let s = std::str::from_utf8(&payload[pos..end])
                .map_err(|_| corrupt("meta string is not UTF-8"))?
                .to_string();
            pos = end;
            Ok(s)
        };
        let key = read_string()?;
        let value = read_string()?;
        meta.push((key, value));
    }
    if pos != payload.len() {
        return Err(corrupt("meta section has trailing bytes"));
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreWriter;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ssr_store_reader_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    fn sample_graph() -> DiGraph {
        DiGraph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0), (5, 5), (0, 5)])
            .unwrap()
    }

    fn write_sample(name: &str) -> std::path::PathBuf {
        let path = tmp(name);
        StoreWriter::new(&sample_graph())
            .meta("dataset", "sample")
            .meta("divisor", "1")
            .write_file(&path)
            .unwrap();
        path
    }

    #[test]
    fn open_reads_header_and_meta_only() {
        let path = write_sample("open.ssg");
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.node_count(), 6);
        assert_eq!(r.edge_count(), 8);
        assert_eq!(r.version(), crate::FORMAT_VERSION);
        assert_eq!(r.meta("dataset"), Some("sample"));
        assert_eq!(r.meta("divisor"), Some("1"));
        assert_eq!(r.meta("absent"), None);
        assert_eq!(r.sections().len(), 3);
        assert!(r.bits_per_edge() > 0.0);
    }

    #[test]
    fn load_full_round_trips() {
        let path = write_sample("full.ssg");
        let g = StoreReader::open(&path).unwrap().load_full().unwrap();
        assert_eq!(g, sample_graph());
    }

    #[test]
    fn load_out_only_matches_full_graph() {
        let path = write_sample("out.ssg");
        let mut r = StoreReader::open(&path).unwrap();
        let out = r.load_out_only().unwrap();
        let g = sample_graph();
        assert_eq!(out.node_count(), g.node_count());
        assert_eq!(out.edge_count(), g.edge_count());
        for v in 0..g.node_count() as NodeId {
            assert_eq!(out.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(out.out_degree(v), g.out_degree(v));
        }
    }

    #[test]
    fn verify_reports_sections_and_density() {
        let path = write_sample("verify.ssg");
        let report = StoreReader::open(&path).unwrap().verify().unwrap();
        assert_eq!(report.sections, 3);
        assert_eq!((report.nodes, report.edges), (6, 8));
        assert!(report.payload_bytes > 0);
        assert!(report.bits_per_edge > 0.0 && report.bits_per_edge <= 32.0);
    }

    #[test]
    fn empty_graph_round_trips() {
        let path = tmp("empty.ssg");
        let g = DiGraph::from_edges(0, &[]).unwrap();
        StoreWriter::new(&g).write_file(&path).unwrap();
        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.load_full().unwrap(), g);
        assert_eq!(r.bits_per_edge(), 0.0);
    }

    #[test]
    fn isolated_tail_nodes_survive() {
        let path = tmp("tail.ssg");
        let g = DiGraph::from_edges(10, &[(0, 1)]).unwrap();
        StoreWriter::new(&g).write_file(&path).unwrap();
        assert_eq!(StoreReader::open(&path).unwrap().load_full().unwrap(), g);
    }
}
