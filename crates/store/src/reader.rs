//! Loading graphs back out of the `.ssg` container.

use crate::checksum::checksum64;
use crate::ef::EliasFano;
use crate::format::{
    Header, SectionInfo, FORMAT_VERSION_V1, SECTION_IN, SECTION_IN_OFFSETS, SECTION_META,
    SECTION_OUT, SECTION_OUT_OFFSETS, SECTION_PERM,
};
use crate::varint::read_varint;
use crate::StoreError;
use ssr_graph::{DiGraph, NodeId, Permutation};
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// A handle on an opened store file.
///
/// [`StoreReader::open`] reads and validates only the header, section
/// table, metadata, and (for v2) the small offset-index and permutation
/// sections; adjacency payloads stay on disk until a load method asks for
/// them. [`StoreReader::load_full`] is one sequential read plus an
/// in-place gap decode — no text parsing, no re-sort;
/// [`StoreReader::load_out_only`] seeks straight to the OUT section via
/// the table and never touches the in-adjacency bytes.
///
/// Stores written with a layout permutation decode back into the
/// **original** id space here: the PERM section records the bijection and
/// every load remaps and re-sorts rows, so callers cannot tell a permuted
/// file from a plain one (beyond its smaller size).
pub struct StoreReader {
    file: std::fs::File,
    file_len: u64,
    header: Header,
    meta: Vec<(String, String)>,
    out_index: Option<EliasFano>,
    in_index: Option<EliasFano>,
    perm: Option<Permutation>,
}

/// Just the out-direction of a stored graph (what
/// [`StoreReader::load_out_only`] returns): forward-walk workloads (RWR
/// push, reachability probes, degree stats) skip decoding — and reading —
/// the in-adjacency section entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutAdjacency {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl OutAdjacency {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The sorted successor list `O(v)`.
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// `|O(v)|`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }
}

/// What [`StoreReader::verify`] reports after checking every section.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Sections checked (checksum + structural decode where applicable).
    pub sections: usize,
    /// Total payload bytes across sections.
    pub payload_bytes: u64,
    /// Node count from the header.
    pub nodes: usize,
    /// Edge count from the header.
    pub edges: usize,
    /// Stored adjacency bits per directed edge, counting **both**
    /// directions' payloads against `2m` stored ids (comparable to the
    /// in-memory CSR's 32 bits/id and to webgraph-style numbers).
    pub bits_per_edge: f64,
    /// Whether the file stores a relabeled layout (PERM section present;
    /// the bijection was validated at open, the offset-index block
    /// ranges by the structural decode here).
    pub permuted: bool,
}

impl StoreReader {
    /// Opens a store file: validates magic, version, section-table
    /// bounds, the metadata section, and — for v2 — the offset indexes
    /// (entry count, first/last values) and the permutation bijection.
    /// Adjacency payloads are not read yet.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<StoreReader, StoreError> {
        let mut file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        // One bounded read covers magic + fixed header + section table.
        let mut prefix = vec![0u8; (Header::encoded_len(0)).min(file_len as usize)];
        file.read_exact(&mut prefix)?;
        let count = match Header::decode(&prefix) {
            Ok(h) => h.sections.len(), // 0-section file: already complete
            Err(StoreError::Truncated { .. }) if prefix.len() >= Header::encoded_len(0) => {
                // Table extends past the fixed header: read the rest.
                u32::from_le_bytes(prefix[32..36].try_into().expect("fixed header present"))
                    as usize
            }
            Err(e) => return Err(e),
        };
        let full_len = Header::encoded_len(count);
        if (file_len as usize) < full_len {
            return Err(StoreError::Truncated { context: "section table" });
        }
        prefix.resize(full_len, 0);
        file.read_exact(&mut prefix[Header::encoded_len(0)..])?;
        let header = Header::decode(&prefix)?;
        // The fixed header carries no checksum, so its counts must be
        // sanity-bounded *before* anything allocates from them: node ids
        // must fit `NodeId`, and each stored id costs at least one payload
        // byte in each adjacency section (v1 additionally spends a degree
        // varint per node) — a flipped high bit in n or m fails here
        // instead of driving a terabyte `Vec::with_capacity`.
        if header.nodes > u64::from(u32::MAX) + 1 {
            return Err(StoreError::Corrupt {
                message: format!("header claims {} nodes (ids must fit u32)", header.nodes),
            });
        }
        for s in &header.sections {
            let end = s.offset.checked_add(s.len);
            if s.offset < full_len as u64 || end.is_none() || end.unwrap() > file_len {
                return Err(StoreError::Truncated { context: "section payload" });
            }
            let min_cost = if header.version == FORMAT_VERSION_V1 {
                header.nodes.checked_add(header.edges)
            } else {
                Some(header.edges)
            };
            if (s.id == SECTION_OUT || s.id == SECTION_IN)
                && min_cost.is_none_or(|cost| cost > s.len)
            {
                return Err(StoreError::Corrupt {
                    message: format!(
                        "header claims n={} m={} but section {} holds only {} bytes",
                        header.nodes, header.edges, s.id, s.len
                    ),
                });
            }
        }
        let mut reader = StoreReader {
            file,
            file_len,
            header,
            meta: Vec::new(),
            out_index: None,
            in_index: None,
            perm: None,
        };
        reader.meta = match reader.header.section(SECTION_META) {
            Some(info) => decode_meta(&reader.read_section(info)?)?,
            None => Vec::new(),
        };
        if reader.header.version > FORMAT_VERSION_V1 {
            reader.out_index = reader.load_offset_index(SECTION_OUT, SECTION_OUT_OFFSETS)?;
            reader.in_index = reader.load_offset_index(SECTION_IN, SECTION_IN_OFFSETS)?;
            reader.perm = reader.load_perm()?;
        }
        Ok(reader)
    }

    /// Node count from the header.
    pub fn node_count(&self) -> usize {
        self.header.nodes as usize
    }

    /// Edge count from the header.
    pub fn edge_count(&self) -> usize {
        self.header.edges as usize
    }

    /// Format version of the file.
    pub fn version(&self) -> u32 {
        self.header.version
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The section table, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.header.sections
    }

    /// All metadata pairs, in written order.
    pub fn metadata(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Looks up one metadata value.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The layout permutation (original id → stored id) if the file was
    /// written with one. Loads remap automatically; this is for tools
    /// that report on the layout itself.
    pub fn permutation(&self) -> Option<&Permutation> {
        self.perm.as_ref()
    }

    /// Whether the stored layout is relabeled (PERM section present).
    pub fn is_permuted(&self) -> bool {
        self.perm.is_some()
    }

    /// Total bytes of the two adjacency sections.
    pub fn adjacency_bytes(&self) -> u64 {
        [SECTION_OUT, SECTION_IN]
            .iter()
            .filter_map(|&id| self.header.section(id))
            .map(|s| s.len)
            .sum()
    }

    /// Total bytes of the two offset-index sections (0 for v1 files).
    pub fn offset_index_bytes(&self) -> u64 {
        [SECTION_OUT_OFFSETS, SECTION_IN_OFFSETS]
            .iter()
            .filter_map(|&id| self.header.section(id))
            .map(|s| s.len)
            .sum()
    }

    /// Stored adjacency bits per directed edge across both directions
    /// (`0` for edgeless graphs).
    pub fn bits_per_edge(&self) -> f64 {
        if self.header.edges == 0 {
            return 0.0;
        }
        // Both sections together hold 2m ids; report bits per stored id
        // so the number is directly comparable to the 32-bit in-memory id.
        // Float arithmetic throughout: a hostile header's m can be any
        // u64, and `2 * m` in integers would overflow (this accessor runs
        // on merely *opened* stores, before any load validates m).
        (self.adjacency_bytes() as f64 * 8.0) / (2.0 * self.header.edges as f64)
    }

    /// Dismantles the reader into its validated parts — the
    /// random-access store reuses the open-time validation instead of
    /// redoing it.
    pub(crate) fn into_parts(self) -> ReaderParts {
        ReaderParts {
            header: self.header,
            meta: self.meta,
            out_index: self.out_index,
            in_index: self.in_index,
            perm: self.perm,
        }
    }

    /// Reads one section payload and verifies its checksum.
    fn read_section(&mut self, info: SectionInfo) -> Result<Vec<u8>, StoreError> {
        self.file.seek(SeekFrom::Start(info.offset))?;
        let mut payload = vec![0u8; info.len as usize];
        self.file.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated { context: "section payload" }
            } else {
                StoreError::Io(e.to_string())
            }
        })?;
        if checksum64(&payload) != info.checksum {
            return Err(StoreError::ChecksumMismatch { section: info.id });
        }
        Ok(payload)
    }

    fn required(&self, id: u32) -> Result<SectionInfo, StoreError> {
        self.header.section(id).ok_or(StoreError::MissingSection { section: id })
    }

    /// Reads and structurally validates one v2 offset-index section
    /// (present iff the matching adjacency section is). Entry count and
    /// the first/last values are pinned here; the index is load-bearing
    /// for v2 decodes (blocks carry no degree varint), so every decode
    /// additionally proves each claimed range holds a whole number of
    /// varints and the directions cross-agree.
    fn load_offset_index(
        &mut self,
        adjacency_id: u32,
        index_id: u32,
    ) -> Result<Option<EliasFano>, StoreError> {
        let Some(adjacency) = self.header.section(adjacency_id) else {
            return Ok(None);
        };
        let info = self.required(index_id)?;
        let payload = self.read_section(info)?;
        let n = self.node_count();
        let ef = EliasFano::decode(&payload, n + 1)?;
        if ef.len() != n + 1 {
            return Err(StoreError::Corrupt {
                message: format!(
                    "offset index {index_id} holds {} entries for {n} nodes",
                    ef.len()
                ),
            });
        }
        if ef.get(0) != 0 || ef.get(n) != adjacency.len {
            return Err(StoreError::Corrupt {
                message: format!(
                    "offset index {index_id} spans {}..{} but section {adjacency_id} holds {} bytes",
                    ef.get(0),
                    ef.get(n),
                    adjacency.len
                ),
            });
        }
        Ok(Some(ef))
    }

    /// Reads and validates the optional PERM section: exactly `n`
    /// varints forming a bijection on `0..n`.
    fn load_perm(&mut self) -> Result<Option<Permutation>, StoreError> {
        let Some(info) = self.header.section(SECTION_PERM) else {
            return Ok(None);
        };
        let payload = self.read_section(info)?;
        let n = self.node_count();
        let mut old2new = Vec::with_capacity(n);
        let mut pos = 0usize;
        for old in 0..n {
            let v = read_varint(&payload, &mut pos).ok_or_else(|| StoreError::Corrupt {
                message: format!("permutation section ends inside entry {old}"),
            })?;
            if v > u64::from(u32::MAX) {
                return Err(StoreError::Corrupt {
                    message: format!("permutation maps node {old} to {v} (does not fit u32)"),
                });
            }
            old2new.push(v as NodeId);
        }
        if pos != payload.len() {
            return Err(StoreError::Corrupt {
                message: "permutation section has trailing bytes".into(),
            });
        }
        Permutation::from_old2new(old2new)
            .map(Some)
            .map_err(|e| StoreError::Corrupt { message: format!("permutation section: {e}") })
    }

    /// Decodes one adjacency direction (stored id space).
    fn decode_direction(&mut self, id: u32) -> Result<Decoded, StoreError> {
        let n = self.node_count();
        let m = self.edge_count();
        let info = self.required(id)?;
        let direction = if id == SECTION_OUT { Direction::Out } else { Direction::In };
        let payload = self.read_section(info)?;
        if self.header.version == FORMAT_VERSION_V1 {
            decode_adjacency_v1(&payload, n, m, direction)
        } else {
            // v2 blocks carry no degree varint; the offset index (validated
            // at open) delimits them.
            let index = match direction {
                Direction::Out => self.out_index.as_ref(),
                Direction::In => self.in_index.as_ref(),
            };
            let index = index.expect("v2 open validated the offset indexes");
            decode_adjacency_v2(&payload, n, m, direction, index)
        }
    }

    /// Cross-checks the directions and assembles the final graph,
    /// remapping a permuted layout back to the original id space.
    fn assemble(&self, out: Decoded, inc: Decoded) -> Result<DiGraph, StoreError> {
        if out.digest != inc.digest {
            return Err(StoreError::Corrupt {
                message: "out- and in-adjacency sections describe different edge sets".into(),
            });
        }
        let n = self.node_count();
        let (out_offsets, out_targets, in_offsets, in_sources) = match &self.perm {
            None => (out.offsets, out.adjacency, inc.offsets, inc.adjacency),
            Some(perm) => {
                let (oo, ot) = remap_to_original(n, &out.offsets, &out.adjacency, perm);
                let (io, is) = remap_to_original(n, &inc.offsets, &inc.adjacency, perm);
                (oo, ot, io, is)
            }
        };
        Ok(DiGraph::from_csr_trusted(n, out_offsets, out_targets, in_offsets, in_sources))
    }

    /// Decodes the full graph: both CSR directions gap-decoded straight
    /// into [`DiGraph`] arrays.
    ///
    /// The decode itself establishes every structural invariant
    /// (sortedness and id range fall out of gap decoding; counts are
    /// checked against the header), and an order-independent digest
    /// accumulated over both directions proves they describe the same
    /// edge set — so assembly goes through [`DiGraph::from_csr_trusted`]
    /// without a third validation pass over the arrays. Permuted stores
    /// are remapped (and rows re-sorted) into the original id space.
    pub fn load_full(&mut self) -> Result<DiGraph, StoreError> {
        let out = self.decode_direction(SECTION_OUT)?;
        let inc = self.decode_direction(SECTION_IN)?;
        self.assemble(out, inc)
    }

    /// Decodes only the out-direction, skipping the in-adjacency section
    /// entirely (one seek via the section table).
    pub fn load_out_only(&mut self) -> Result<OutAdjacency, StoreError> {
        let n = self.node_count();
        let out = self.decode_direction(SECTION_OUT)?;
        let (offsets, targets) = match &self.perm {
            None => (out.offsets, out.adjacency),
            Some(perm) => remap_to_original(n, &out.offsets, &out.adjacency, perm),
        };
        Ok(OutAdjacency { n, offsets, targets })
    }

    /// Checks every section's checksum and fully decodes both adjacency
    /// directions (including the cross-direction consistency digest). On
    /// v2 files the offset indexes delimit the blocks, so the decode
    /// itself proves every claimed byte range holds exactly a whole
    /// number of varints, the ranges tile the section, and both
    /// directions agree on the edge set — on top of the bijection check
    /// open performed on the permutation.
    pub fn verify(&mut self) -> Result<VerifyReport, StoreError> {
        // Checksum the sections the structural pass below won't read
        // anyway (META, offset indexes, PERM, future/unknown ids) —
        // the structural pass checksums the two adjacency payloads as it
        // reads them, and re-reading the largest sections twice would
        // double verify's I/O for no added coverage.
        for info in self.header.sections.clone() {
            if info.id != SECTION_OUT && info.id != SECTION_IN {
                self.read_section(info)?;
            }
        }
        // Structural pass: a decode catches what checksums cannot (a
        // checksum only proves the bytes are the ones written).
        let out = self.decode_direction(SECTION_OUT)?;
        let inc = self.decode_direction(SECTION_IN)?;
        let g = self.assemble(out, inc)?;
        if g.node_count() != self.node_count() || g.edge_count() != self.edge_count() {
            return Err(StoreError::Corrupt {
                message: format!(
                    "header claims n={} m={} but payload decodes to n={} m={}",
                    self.node_count(),
                    self.edge_count(),
                    g.node_count(),
                    g.edge_count()
                ),
            });
        }
        Ok(VerifyReport {
            sections: self.header.sections.len(),
            payload_bytes: self.header.sections.iter().map(|s| s.len).sum(),
            nodes: g.node_count(),
            edges: g.edge_count(),
            bits_per_edge: self.bits_per_edge(),
            permuted: self.perm.is_some(),
        })
    }
}

/// Reorders a decoded (stored-space) CSR direction into the original id
/// space: row `u` becomes the stored row of `perm.to_new(u)` with every
/// id mapped through `perm.to_old` and re-sorted (the bijection preserves
/// set size, so no dedup is needed).
fn remap_to_original(
    n: usize,
    offsets: &[usize],
    adjacency: &[NodeId],
    perm: &Permutation,
) -> (Vec<usize>, Vec<NodeId>) {
    let mut offsets_o = Vec::with_capacity(n + 1);
    let mut adj_o: Vec<NodeId> = Vec::with_capacity(adjacency.len());
    offsets_o.push(0);
    for old in 0..n as NodeId {
        let p = perm.to_new(old) as usize;
        let start = adj_o.len();
        adj_o.extend(adjacency[offsets[p]..offsets[p + 1]].iter().map(|&w| perm.to_old(w)));
        adj_o[start..].sort_unstable();
        offsets_o.push(adj_o.len());
    }
    (offsets_o, adj_o)
}

/// Which adjacency direction a section encodes — determines how the
/// `(source, target)` pair is formed for the cross-direction digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Section lists successors: edge is `(node, decoded id)`.
    Out,
    /// Section lists predecessors: edge is `(decoded id, node)`.
    In,
}

impl Direction {
    fn name(self) -> &'static str {
        match self {
            Direction::Out => "out",
            Direction::In => "in",
        }
    }
}

/// The validated open-time state of a reader, handed to the
/// random-access store by [`StoreReader::into_parts`].
pub(crate) struct ReaderParts {
    pub(crate) header: Header,
    pub(crate) meta: Vec<(String, String)>,
    pub(crate) out_index: Option<EliasFano>,
    pub(crate) in_index: Option<EliasFano>,
    pub(crate) perm: Option<Permutation>,
}

/// One decoded adjacency direction, still in the stored id space.
struct Decoded {
    offsets: Vec<usize>,
    adjacency: Vec<NodeId>,
    /// Order-independent digest of the direction's edge set.
    digest: u64,
}

/// Decodes one v1 gap-coded CSR direction, validating everything a
/// hostile payload could get wrong *during* the decode: truncation,
/// ordering violations (zero gaps), id range, overflow, and the exact
/// count the header promises.
fn decode_adjacency_v1(
    payload: &[u8],
    n: usize,
    m: usize,
    direction: Direction,
) -> Result<Decoded, StoreError> {
    let side = direction.name();
    let corrupt = |message: String| StoreError::Corrupt { message };
    let mut offsets = Vec::with_capacity(n + 1);
    let mut adjacency: Vec<NodeId> = Vec::with_capacity(m);
    let mut digest = 0u64;
    offsets.push(0);
    let mut pos = 0usize;
    for v in 0..n {
        let degree = read_varint(payload, &mut pos)
            .ok_or_else(|| corrupt(format!("{side}-section ends inside node {v}'s degree")))?;
        // Budget check in subtraction form: `len + degree` could overflow
        // on a hostile 10-byte degree varint, `m - len` cannot (the
        // invariant `len <= m` holds throughout).
        if degree > (m - adjacency.len()) as u64 {
            return Err(corrupt(format!(
                "{side}-section holds more than the {m} ids the header promises"
            )));
        }
        let mut prev = 0u64;
        for i in 0..degree {
            let delta = read_varint(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("{side}-section ends inside node {v}'s list")))?;
            let value = if i == 0 {
                delta
            } else {
                if delta == 0 {
                    return Err(corrupt(format!(
                        "{side}-adjacency of node {v} has a zero gap (duplicate neighbor)"
                    )));
                }
                prev.checked_add(delta)
                    .ok_or_else(|| corrupt(format!("{side}-adjacency of node {v} overflows")))?
            };
            if value >= n as u64 {
                return Err(corrupt(format!(
                    "{side}-adjacency of node {v} references node {value} >= {n}"
                )));
            }
            // Same mixer DiGraph::from_csr validates with, so the debug
            // cross-check and this inline check agree on "same edge set".
            digest ^= match direction {
                Direction::Out => ssr_graph::edge_digest(v as NodeId, value as NodeId),
                Direction::In => ssr_graph::edge_digest(value as NodeId, v as NodeId),
            };
            adjacency.push(value as NodeId);
            prev = value;
        }
        offsets.push(adjacency.len());
    }
    if pos != payload.len() {
        return Err(corrupt(format!(
            "{side}-section has {} trailing bytes after node {n}",
            payload.len() - pos
        )));
    }
    if adjacency.len() != m {
        return Err(corrupt(format!(
            "{side}-section decodes {} ids but the header promises {m}",
            adjacency.len()
        )));
    }
    Ok(Decoded { offsets, adjacency, digest })
}

/// Decodes one v2 CSR direction. Blocks carry no degree varint — the
/// offset index delimits each node's byte range and the varints inside
/// self-delimit — so the index is load-bearing here: every claimed range
/// must decode exactly (no truncated varint, no trailing bytes), each id
/// must be in range and ascending (the `gap − 1` coding cannot express
/// duplicates), and the total must match the header. The cross-direction
/// digest then proves both sections (and both indexes) describe one edge
/// set.
fn decode_adjacency_v2(
    payload: &[u8],
    n: usize,
    m: usize,
    direction: Direction,
    index: &EliasFano,
) -> Result<Decoded, StoreError> {
    let side = direction.name();
    let corrupt = |message: String| StoreError::Corrupt { message };
    let mut offsets = Vec::with_capacity(n + 1);
    let mut adjacency: Vec<NodeId> = Vec::with_capacity(m);
    let mut digest = 0u64;
    offsets.push(0);
    // Walk the index sequentially — `get` would pay a select per node.
    let mut bounds = index.iter();
    let mut start = bounds.next().expect("open validated the index holds n + 1 entries");
    for v in 0..n {
        let end = bounds.next().expect("open validated the index holds n + 1 entries");
        // Open pinned the index's first/last entries to the section
        // bounds, but a hostile low-bits payload can still make interior
        // entries non-monotone or out of range.
        if start > end || end > payload.len() as u64 {
            return Err(corrupt(format!(
                "{side}-offset index claims block {v} spans {start}..{end} in a {}-byte payload",
                payload.len()
            )));
        }
        let block = &payload[start as usize..end as usize];
        let mut pos = 0usize;
        let mut prev = 0u64;
        let mut first = true;
        while pos < block.len() {
            if adjacency.len() == m {
                return Err(corrupt(format!(
                    "{side}-section holds more than the {m} ids the header promises"
                )));
            }
            let delta = read_varint(block, &mut pos)
                .ok_or_else(|| corrupt(format!("{side}-block of node {v} ends inside a varint")))?;
            let value = if first {
                first = false;
                // v2: signed delta from the node's own id.
                let signed = unzigzag(delta);
                let value = (v as i64)
                    .checked_add(signed)
                    .ok_or_else(|| corrupt(format!("{side}-adjacency of node {v} overflows")))?;
                if value < 0 {
                    return Err(corrupt(format!(
                        "{side}-adjacency of node {v} references negative id {value}"
                    )));
                }
                value as u64
            } else {
                // v2 stores gap − 1: the minimum gap is implicit.
                prev.checked_add(delta)
                    .and_then(|x| x.checked_add(1))
                    .ok_or_else(|| corrupt(format!("{side}-adjacency of node {v} overflows")))?
            };
            if value >= n as u64 {
                return Err(corrupt(format!(
                    "{side}-adjacency of node {v} references node {value} >= {n}"
                )));
            }
            digest ^= match direction {
                Direction::Out => ssr_graph::edge_digest(v as NodeId, value as NodeId),
                Direction::In => ssr_graph::edge_digest(value as NodeId, v as NodeId),
            };
            adjacency.push(value as NodeId);
            prev = value;
        }
        offsets.push(adjacency.len());
        start = end;
    }
    if adjacency.len() != m {
        return Err(corrupt(format!(
            "{side}-section decodes {} ids but the header promises {m}",
            adjacency.len()
        )));
    }
    Ok(Decoded { offsets, adjacency, digest })
}

/// Inverse of the writer's zigzag map.
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decodes the metadata section written by the writer.
fn decode_meta(payload: &[u8]) -> Result<Vec<(String, String)>, StoreError> {
    let corrupt = |message: &str| StoreError::Corrupt { message: message.into() };
    let mut pos = 0usize;
    let count =
        read_varint(payload, &mut pos).ok_or_else(|| corrupt("meta section missing count"))?;
    let mut meta = Vec::new();
    for _ in 0..count {
        let mut read_string = || -> Result<String, StoreError> {
            let len = read_varint(payload, &mut pos)
                .ok_or_else(|| corrupt("meta string missing length"))?
                as usize;
            let end = pos.checked_add(len).filter(|&e| e <= payload.len());
            let end = end.ok_or_else(|| corrupt("meta string runs past the section"))?;
            let s = std::str::from_utf8(&payload[pos..end])
                .map_err(|_| corrupt("meta string is not UTF-8"))?
                .to_string();
            pos = end;
            Ok(s)
        };
        let key = read_string()?;
        let value = read_string()?;
        meta.push((key, value));
    }
    if pos != payload.len() {
        return Err(corrupt("meta section has trailing bytes"));
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StoreWriter, FORMAT_VERSION};
    use ssr_graph::perm::{bfs_order, degree_order};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ssr_store_reader_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    fn sample_graph() -> DiGraph {
        DiGraph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0), (5, 5), (0, 5)])
            .unwrap()
    }

    fn write_sample(name: &str) -> std::path::PathBuf {
        let path = tmp(name);
        StoreWriter::new(&sample_graph())
            .meta("dataset", "sample")
            .meta("divisor", "1")
            .write_file(&path)
            .unwrap();
        path
    }

    #[test]
    fn open_reads_header_and_meta_only() {
        let path = write_sample("open.ssg");
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.node_count(), 6);
        assert_eq!(r.edge_count(), 8);
        assert_eq!(r.version(), FORMAT_VERSION);
        assert_eq!(r.meta("dataset"), Some("sample"));
        assert_eq!(r.meta("divisor"), Some("1"));
        assert_eq!(r.meta("absent"), None);
        // OUT, IN, OUT_OFFSETS, IN_OFFSETS, META.
        assert_eq!(r.sections().len(), 5);
        assert!(r.bits_per_edge() > 0.0);
        assert!(r.offset_index_bytes() > 0);
        assert!(!r.is_permuted());
    }

    #[test]
    fn load_full_round_trips() {
        let path = write_sample("full.ssg");
        let g = StoreReader::open(&path).unwrap().load_full().unwrap();
        assert_eq!(g, sample_graph());
    }

    #[test]
    fn v1_store_still_round_trips() {
        let path = tmp("v1.ssg");
        StoreWriter::new(&sample_graph())
            .version(crate::format::FORMAT_VERSION_V1)
            .write_file(&path)
            .unwrap();
        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.version(), crate::format::FORMAT_VERSION_V1);
        assert_eq!(r.sections().len(), 3);
        assert_eq!(r.offset_index_bytes(), 0);
        assert_eq!(r.load_full().unwrap(), sample_graph());
        assert!(r.verify().unwrap().sections == 3);
    }

    #[test]
    fn permuted_store_round_trips_in_original_id_space() {
        let g = sample_graph();
        for (order, perm) in [("bfs", bfs_order(&g)), ("degree", degree_order(&g))] {
            let path = tmp(&format!("perm_{order}.ssg"));
            StoreWriter::new(&g).permutation(perm, order).write_file(&path).unwrap();
            let mut r = StoreReader::open(&path).unwrap();
            assert!(r.is_permuted());
            assert_eq!(r.meta(crate::meta_keys::PERM_ORDER), Some(order));
            assert_eq!(r.load_full().unwrap(), g, "order {order}");
            let out = r.load_out_only().unwrap();
            for v in 0..g.node_count() as NodeId {
                assert_eq!(out.out_neighbors(v), g.out_neighbors(v));
            }
            let report = r.verify().unwrap();
            assert!(report.permuted);
            assert_eq!(report.sections, 6);
        }
    }

    #[test]
    fn load_out_only_matches_full_graph() {
        let path = write_sample("out.ssg");
        let mut r = StoreReader::open(&path).unwrap();
        let out = r.load_out_only().unwrap();
        let g = sample_graph();
        assert_eq!(out.node_count(), g.node_count());
        assert_eq!(out.edge_count(), g.edge_count());
        for v in 0..g.node_count() as NodeId {
            assert_eq!(out.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(out.out_degree(v), g.out_degree(v));
        }
    }

    #[test]
    fn verify_reports_sections_and_density() {
        let path = write_sample("verify.ssg");
        let report = StoreReader::open(&path).unwrap().verify().unwrap();
        assert_eq!(report.sections, 5);
        assert_eq!((report.nodes, report.edges), (6, 8));
        assert!(report.payload_bytes > 0);
        assert!(report.bits_per_edge > 0.0 && report.bits_per_edge <= 32.0);
        assert!(!report.permuted);
    }

    #[test]
    fn empty_graph_round_trips() {
        let path = tmp("empty.ssg");
        let g = DiGraph::from_edges(0, &[]).unwrap();
        StoreWriter::new(&g).write_file(&path).unwrap();
        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.load_full().unwrap(), g);
        assert_eq!(r.bits_per_edge(), 0.0);
    }

    #[test]
    fn isolated_tail_nodes_survive() {
        let path = tmp("tail.ssg");
        let g = DiGraph::from_edges(10, &[(0, 1)]).unwrap();
        StoreWriter::new(&g).write_file(&path).unwrap();
        assert_eq!(StoreReader::open(&path).unwrap().load_full().unwrap(), g);
    }

    #[test]
    fn unzigzag_inverts_writer_map() {
        for v in [0i64, 1, -1, 2, -2, 1 << 40, -(1 << 40), i64::MAX, i64::MIN] {
            let coded = ((v << 1) ^ (v >> 63)) as u64;
            assert_eq!(unzigzag(coded), v);
        }
    }
}
