//! # ssr-store — zero-parse binary graph container (`.ssg`)
//!
//! Every layer above the graph substrate (QueryEngine, AllPairsEngine,
//! `simstar serve`) used to ingest graphs by parsing text edge lists:
//! re-tokenizing, re-validating, and re-sorting the whole graph on every
//! CLI run, server start, and admin `reload`. This crate stores the
//! already-built CSR on disk instead, in the format family web-scale graph
//! systems settled on (WebGraph and friends): **sorted adjacency as
//! delta-gap LEB128 varints**, both directions, behind a versioned header
//! with a section table and per-section FNV checksums.
//!
//! * [`StoreWriter`] — streams a [`DiGraph`] into the container, one node
//!   at a time, with optional metadata (dataset id, scale divisor, build
//!   parameters).
//! * [`StoreReader`] — opens a file (header + table + metadata only),
//!   then [`StoreReader::load_full`] decodes both directions in one
//!   sequential pass (no parsing, no re-sort — node ids come out exactly
//!   as they went in), or [`StoreReader::load_out_only`] seeks past the
//!   in-adjacency for forward-only workloads.
//! * [`load_graph_auto`] — the magic-byte sniffing entry point the CLI
//!   and the serve reload path use: `.ssg` containers and text edge lists
//!   are accepted interchangeably everywhere a graph path is expected.
//!
//! Corruption never panics: truncation, bit flips, bad magic, and version
//! skew all surface as typed [`StoreError`] variants (property- and
//! corruption-tested in `tests/`).
//!
//! The wire layout is documented in [`mod@format`]; sizes on the paper's
//! datasets land around 6-9 bits per stored id versus 32 in memory and
//! ~70 for the text format (see `BENCH_store.json` at the repo root).

// Denied (not forbidden) so the one FFI mmap module can opt back in;
// everything else in the crate stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod checksum;
pub mod ef;
mod error;
pub mod format;
#[allow(unsafe_code)]
mod mmap;
mod random;
mod reader;
pub mod varint;
mod writer;

pub use ef::EliasFano;
pub use error::StoreError;
pub use format::{SectionInfo, FORMAT_VERSION, FORMAT_VERSION_V1, MAGIC};
pub use random::{RandomAccessOptions, RandomAccessStore};
pub use reader::{OutAdjacency, StoreReader, VerifyReport};
pub use writer::StoreWriter;

use ssr_graph::DiGraph;
use std::io::Read;
use std::path::Path;

/// Conventional metadata keys. Nothing enforces them — they exist so the
/// writer and the dataset cache agree on spelling.
pub mod meta_keys {
    /// Dataset identifier (e.g. `CitHepTh`).
    pub const DATASET: &str = "dataset";
    /// Scale divisor the dataset was generated at.
    pub const DIVISOR: &str = "divisor";
    /// Free-form build parameters (generator kind, seed, …).
    pub const BUILD: &str = "build";
    /// Byte count v1 coding of the same (unpermuted) graph would need —
    /// recorded by the v2 writer so `store info` can report the format
    /// delta without rebuilding.
    pub const V1_ADJACENCY_BYTES: &str = "v1.adjacency_bytes";
    /// Name of the ordering a layout permutation was derived with
    /// (`bfs`, `degree`, …).
    pub const PERM_ORDER: &str = "perm.order";
}

/// Whether `path` starts with the `.ssg` magic bytes. Files shorter than
/// the magic are simply "not a store" (they may still be valid text).
pub fn is_store_file<P: AsRef<Path>>(path: P) -> Result<bool, StoreError> {
    let mut file = std::fs::File::open(path)?;
    let mut prefix = [0u8; MAGIC.len()];
    let mut filled = 0;
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..])? {
            0 => return Ok(false),
            k => filled += k,
        }
    }
    Ok(prefix == MAGIC)
}

/// Loads a graph from either format, deciding by content, not extension:
/// `.ssg` magic ⇒ the zero-parse store path, anything else ⇒ the text
/// edge-list parser. This is what `simstar --input` and the serve admin
/// `reload` op call, so stores are accepted transparently everywhere.
pub fn load_graph_auto<P: AsRef<Path>>(path: P) -> Result<DiGraph, StoreError> {
    if is_store_file(&path)? {
        StoreReader::open(&path)?.load_full()
    } else {
        Ok(ssr_graph::io::read_edge_list_file(&path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ssr_store_lib_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    #[test]
    fn auto_loader_accepts_both_formats() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let text_path = tmp("auto.txt");
        ssr_graph::io::write_edge_list_file(&g, &text_path).unwrap();
        let store_path = tmp("auto.ssg");
        StoreWriter::new(&g).write_file(&store_path).unwrap();
        assert_eq!(load_graph_auto(&text_path).unwrap(), g);
        assert_eq!(load_graph_auto(&store_path).unwrap(), g);
    }

    #[test]
    fn sniffing_handles_short_and_missing_files() {
        let short = tmp("short.bin");
        std::fs::write(&short, [0x89, b'S']).unwrap();
        assert!(!is_store_file(&short).unwrap());
        let empty = tmp("empty.bin");
        std::fs::write(&empty, []).unwrap();
        assert!(!is_store_file(&empty).unwrap());
        assert!(matches!(is_store_file(tmp("missing.ssg")), Err(StoreError::Io(_))));
    }

    #[test]
    fn text_parse_errors_surface_through_auto_loader() {
        let bad = tmp("bad.txt");
        std::fs::write(&bad, "0 1\nnot an edge\n").unwrap();
        assert!(matches!(load_graph_auto(&bad), Err(StoreError::Graph(_))));
    }
}
