//! The rudimentary link-based measures SimRank generalises (paper §1 /
//! Related Work): **co-citation** (Small, 1973 — `AᵀA`: how many nodes
//! reference both) and **bibliographic coupling** (Kessler, 1963 — `AAᵀ`:
//! how many nodes both reference). Provided raw and cosine-normalised.

use simrank_star::SimilarityMatrix;
use ssr_graph::{DiGraph, NodeId};
use ssr_linalg::Dense;

/// Raw co-citation counts: `s(a, b) = |I(a) ∩ I(b)|`.
pub fn cocitation(g: &DiGraph) -> SimilarityMatrix {
    neighbor_overlap(g, |g, v| g.in_neighbors(v))
}

/// Raw bibliographic-coupling counts: `s(a, b) = |O(a) ∩ O(b)|`.
pub fn coupling(g: &DiGraph) -> SimilarityMatrix {
    neighbor_overlap(g, |g, v| g.out_neighbors(v))
}

/// Cosine-normalised co-citation:
/// `|I(a) ∩ I(b)| / sqrt(|I(a)|·|I(b)|)` (0 when either set is empty).
pub fn cocitation_cosine(g: &DiGraph) -> SimilarityMatrix {
    let raw = cocitation(g);
    normalise(g, raw, |g, v| g.in_degree(v))
}

/// Cosine-normalised coupling.
pub fn coupling_cosine(g: &DiGraph) -> SimilarityMatrix {
    let raw = coupling(g);
    normalise(g, raw, |g, v| g.out_degree(v))
}

fn neighbor_overlap<'g>(
    g: &'g DiGraph,
    nb: impl Fn(&'g DiGraph, NodeId) -> &'g [NodeId],
) -> SimilarityMatrix {
    let n = g.node_count();
    let mut m = Dense::zeros(n, n);
    for a in 0..n as NodeId {
        let na = nb(g, a);
        for b in a..n as NodeId {
            let nbr = nb(g, b);
            let c = sorted_intersection_size(na, nbr) as f64;
            m.set(a as usize, b as usize, c);
            m.set(b as usize, a as usize, c);
        }
    }
    SimilarityMatrix::from_dense(m)
}

fn normalise(
    g: &DiGraph,
    raw: SimilarityMatrix,
    deg: impl Fn(&DiGraph, NodeId) -> usize,
) -> SimilarityMatrix {
    let n = g.node_count();
    let mut m = raw.into_dense();
    for a in 0..n {
        for b in 0..n {
            let da = deg(g, a as NodeId);
            let db = deg(g, b as NodeId);
            let denom = ((da * db) as f64).sqrt();
            let v = if denom > 0.0 { m.get(a, b) / denom } else { 0.0 };
            m.set(a, b, v);
        }
    }
    SimilarityMatrix::from_dense(m)
}

fn sorted_intersection_size(xs: &[NodeId], ys: &[NodeId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn cocitation_counts_shared_citers() {
        let s = cocitation(&diamond());
        // 1 and 2 are both cited by 0.
        assert_eq!(s.score(1, 2), 1.0);
        // 0 has no citers.
        assert_eq!(s.score(0, 1), 0.0);
        // Self co-citation = in-degree.
        assert_eq!(s.score(3, 3), 2.0);
    }

    #[test]
    fn coupling_counts_shared_references() {
        let s = coupling(&diamond());
        // 1 and 2 both cite 3.
        assert_eq!(s.score(1, 2), 1.0);
        assert_eq!(s.score(0, 0), 2.0);
    }

    #[test]
    fn cosine_in_unit_range() {
        let g = diamond();
        let s = cocitation_cosine(&g);
        assert!(s.max_norm() <= 1.0 + 1e-12);
        assert_eq!(s.score(1, 2), 1.0); // identical singleton citer sets
    }

    #[test]
    fn coupling_is_cocitation_on_transpose() {
        let g = diamond();
        let a = coupling(&g);
        let b = cocitation(&g.transpose());
        assert!(a.matrix().approx_eq(b.matrix(), 0.0));
    }

    #[test]
    fn simrank_refines_cocitation() {
        // Nodes with zero co-citation can still be SimRank-similar through
        // recursion — the paper's motivation for SimRank over co-citation.
        // two-hop shared ancestry: 0 -> 1 -> 3, 0 -> 2 -> 4.
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]).unwrap();
        let cc = cocitation(&g);
        assert_eq!(cc.score(3, 4), 0.0);
        let sr = crate::simrank::simrank(&g, 0.8, 10);
        assert!(sr.score(3, 4) > 0.0);
    }
}
