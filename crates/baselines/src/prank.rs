//! P-Rank (Zhao, Han, Sun — CIKM'09): SimRank extended with out-links.
//!
//! ```text
//! S = λ·C·Q S Qᵀ + (1−λ)·C·P S Pᵀ + (1−C)·I
//! ```
//!
//! where `Q` is the in-link (backward) transition and `P` the out-link
//! (forward) transition; `λ ∈ [0, 1]` balances the two (½ by default, as in
//! Zhao et al.). The paper's §1 argument, which our Figure-1 tests encode:
//! P-Rank patches *some* zero-SimRank pairs (e.g. `(h, d)` via the out-link
//! source `i`), but inserting one node on the out-path (`h → l → i`) breaks
//! it again — the fix is structural in SimRank\*, not in adding out-links.

use simrank_star::{PlainRightMultiplier, RightMultiplier, SimilarityMatrix};
use ssr_graph::DiGraph;
use ssr_linalg::Dense;

/// psum-PR: P-Rank with balance weight `lambda`, `k` iterations from
/// `S₀ = (1−C)·I`, both summations memoized via the shared kernels.
pub fn prank(g: &DiGraph, c: f64, lambda: f64, k: usize) -> SimilarityMatrix {
    assert!(c > 0.0 && c < 1.0, "damping factor must be in (0,1)");
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
    let in_kernel = PlainRightMultiplier::new(g);
    // The forward transition of g is the backward transition of gᵀ.
    let gt = g.transpose();
    let out_kernel = PlainRightMultiplier::new(&gt);
    let n = g.node_count();
    let mut s = Dense::scaled_identity(n, 1.0 - c);
    for _ in 0..k {
        // In-link term: Q S Qᵀ.
        let p_in = in_kernel.apply(&s);
        let qsq = in_kernel.apply(&p_in.transpose()).transpose();
        // Out-link term: P S Pᵀ.
        let p_out = out_kernel.apply(&s);
        let psp = out_kernel.apply(&p_out.transpose()).transpose();
        let mut next = qsq;
        next.scale(lambda * c);
        next.axpy((1.0 - lambda) * c, &psp);
        next.add_diagonal(1.0 - c);
        s = next;
    }
    SimilarityMatrix::from_dense(s)
}

/// P-Rank with the paper's default λ = ½.
pub fn prank_default(g: &DiGraph, c: f64, k: usize) -> SimilarityMatrix {
    prank(g, c, 0.5, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simrank::simrank;

    fn fig1() -> DiGraph {
        DiGraph::from_edges(
            11,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 5),
                (1, 6),
                (1, 8),
                (3, 2),
                (3, 6),
                (3, 8),
                (4, 7),
                (4, 8),
                (5, 3),
                (7, 8),
                (9, 7),
                (9, 8),
                (10, 7),
                (10, 8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lambda_one_is_simrank() {
        let g = fig1();
        let pr = prank(&g, 0.8, 1.0, 8);
        let sr = simrank(&g, 0.8, 8);
        assert!(pr.matrix().approx_eq(sr.matrix(), 1e-12));
    }

    #[test]
    fn prank_rescues_h_d_via_outlink_source() {
        // Figure 1: PR(h, d) = .049 ≠ 0 thanks to h → i ← d.
        let g = fig1();
        let pr = prank_default(&g, 0.8, 12);
        assert!(pr.score(7, 3) > 0.0, "P-Rank should see the out-link source i");
        assert!(
            (pr.score(7, 3) - 0.049).abs() < 0.01,
            "PR(h,d) = {}, paper reports ≈ .049",
            pr.score(7, 3)
        );
    }

    #[test]
    fn prank_still_zero_for_g_a() {
        // Figure 1: PR(g, a) = 0 — no in- or out-link source centers any
        // path of (g, a).
        let g = fig1();
        let pr = prank_default(&g, 0.8, 12);
        assert_eq!(pr.score(6, 0), 0.0);
    }

    #[test]
    fn inserted_node_breaks_prank_but_not_simrank_star() {
        // §1: replace h → i by h → l → i; P-Rank(h, d) collapses to 0,
        // SimRank* stays positive.
        let g = DiGraph::from_edges(
            12,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 5),
                (1, 6),
                (1, 8),
                (3, 2),
                (3, 6),
                (3, 8),
                (4, 7),
                (4, 8),
                (5, 3),
                (7, 11), // h -> l
                (11, 8), // l -> i
                (9, 7),
                (9, 8),
                (10, 7),
                (10, 8),
            ],
        )
        .unwrap();
        let pr = prank_default(&g, 0.8, 12);
        assert_eq!(pr.score(7, 3), 0.0, "P-Rank must lose (h, d) after inserting l");
        let star = simrank_star::geometric::iterate(&g, &simrank_star::SimStarParams::new(0.8, 12));
        assert!(star.score(7, 3) > 0.0, "SimRank* keeps (h, d) similar");
    }

    #[test]
    fn symmetric_and_bounded() {
        let pr = prank_default(&fig1(), 0.6, 8);
        assert!(pr.matrix().is_symmetric(1e-12));
        assert!(pr.max_norm() <= 1.0 + 1e-12);
    }

    #[test]
    fn undirected_prank_equals_simrank() {
        // On a symmetric graph Q = P, so P-Rank (any λ) = SimRank — the
        // Fig. 6(a) observation that psum-PR and psum-SR coincide on DBLP.
        let g = fig1().symmetrized();
        let pr = prank(&g, 0.6, 0.3, 6);
        let sr = simrank(&g, 0.6, 6);
        assert!(pr.matrix().approx_eq(sr.matrix(), 1e-10));
    }
}
