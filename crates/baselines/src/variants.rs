//! SimRank variants from the paper's Related Work — SimRank++ (Antonellis
//! et al., PVLDB'08), P-SimRank (Fogaras & Rácz, WWW'05) and MatchSim (Lin
//! et al., KAIS'12).
//!
//! They are carried here to *test the paper's claim*: each addresses a
//! different SimRank quirk (evidence of common neighbors, coupled surfers,
//! neighborhood matching), but **"none of them resolves the
//! zero-SimRank issue"** — all still require a symmetric in-link source, so
//! on the two-arm path graph `s(a_{-1}, a_2)` stays 0 for all of them (see
//! the unit tests).

use simrank_star::SimilarityMatrix;
use ssr_graph::{DiGraph, NodeId};
use ssr_linalg::Dense;

/// SimRank++ (Antonellis et al.): SimRank rescaled by the *evidence* of
/// common in-neighbors,
///
/// ```text
/// evidence(a, b) = Σ_{i=1}^{|I(a) ∩ I(b)|} 2^{-i}   ∈ (0, 1)
/// s⁺⁺(a, b) = evidence(a, b) · s(a, b)    (a ≠ b)
/// ```
///
/// compensating SimRank's quirk that similarity *decreases* as common
/// in-neighbors increase.
pub fn simrank_plus_plus(g: &DiGraph, c: f64, k: usize) -> SimilarityMatrix {
    let base = crate::simrank::simrank(g, c, k);
    let n = g.node_count();
    let mut m = base.into_dense();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let common =
                sorted_intersection_size(g.in_neighbors(a as NodeId), g.in_neighbors(b as NodeId));
            let evidence = 1.0 - 0.5f64.powi(common as i32);
            m.set(a, b, evidence * m.get(a, b));
        }
    }
    SimilarityMatrix::from_dense(m)
}

/// P-SimRank (Fogaras & Rácz): the coupled-surfer interpretation. Two
/// backward surfers step **together** to a uniformly-random common
/// in-neighbor with probability `J = |I(a) ∩ I(b)| / |I(a) ∪ I(b)|`
/// (meeting immediately), otherwise they step independently to
/// *non-coinciding* in-neighbors:
///
/// ```text
/// s_{k+1}(a,b) = C·[ J_{ab} + (1−J_{ab}) · mean_{x∈I(a), y∈I(b), x≠y} s_k(x,y) ]
/// ```
pub fn p_simrank(g: &DiGraph, c: f64, k: usize) -> SimilarityMatrix {
    assert!(c > 0.0 && c < 1.0, "damping factor must be in (0,1)");
    let n = g.node_count();
    let mut s = Dense::identity(n);
    for _ in 0..k {
        let mut next = Dense::zeros(n, n);
        for a in 0..n {
            next.set(a, a, 1.0);
            for b in (a + 1)..n {
                let ia = g.in_neighbors(a as NodeId);
                let ib = g.in_neighbors(b as NodeId);
                if ia.is_empty() || ib.is_empty() {
                    continue;
                }
                let inter = sorted_intersection_size(ia, ib);
                let union = ia.len() + ib.len() - inter;
                let j = inter as f64 / union as f64;
                // Mean similarity over non-coinciding predecessor pairs.
                let mut acc = 0.0;
                let mut cnt = 0usize;
                for &x in ia {
                    for &y in ib {
                        if x != y {
                            acc += s.get(x as usize, y as usize);
                            cnt += 1;
                        }
                    }
                }
                let indep = if cnt == 0 { 0.0 } else { acc / cnt as f64 };
                let v = c * (j + (1.0 - j) * indep);
                next.set(a, b, v);
                next.set(b, a, v);
            }
        }
        s = next;
    }
    SimilarityMatrix::from_dense(s)
}

/// MatchSim (Lin et al.): similarity via **maximum neighborhood matching** —
/// `s(a,b) = W(M*) / max(|I(a)|, |I(b)|)` where `M*` is a maximum-weight
/// matching between `I(a)` and `I(b)` under the previous iteration's scores.
/// Exact max-weight matching is cubic; following common practice (and
/// because scores here only feed ranking), the matching is computed
/// **greedily** (sort candidate pairs by weight, take disjoint ones), a
/// ½-approximation.
pub fn matchsim_greedy(g: &DiGraph, k: usize) -> SimilarityMatrix {
    let n = g.node_count();
    let mut s = Dense::identity(n);
    for _ in 0..k {
        let mut next = Dense::zeros(n, n);
        for a in 0..n {
            next.set(a, a, 1.0);
            for b in (a + 1)..n {
                let ia = g.in_neighbors(a as NodeId);
                let ib = g.in_neighbors(b as NodeId);
                if ia.is_empty() || ib.is_empty() {
                    continue;
                }
                let w = greedy_matching_weight(ia, ib, &s);
                let v = w / ia.len().max(ib.len()) as f64;
                next.set(a, b, v);
                next.set(b, a, v);
            }
        }
        s = next;
    }
    SimilarityMatrix::from_dense(s)
}

fn greedy_matching_weight(ia: &[NodeId], ib: &[NodeId], s: &Dense) -> f64 {
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(ia.len() * ib.len());
    for (i, &x) in ia.iter().enumerate() {
        for (j, &y) in ib.iter().enumerate() {
            let w = s.get(x as usize, y as usize);
            if w > 0.0 {
                pairs.push((w, i, j));
            }
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then((a.1, a.2).cmp(&(b.1, b.2))));
    let mut used_a = vec![false; ia.len()];
    let mut used_b = vec![false; ib.len()];
    let mut total = 0.0;
    for (w, i, j) in pairs {
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            total += w;
        }
    }
    total
}

fn sorted_intersection_size(xs: &[NodeId], ys: &[NodeId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrank_star::{geometric, SimStarParams};

    /// Two-arm path 0 ← 1 ← 2 → 3 → 4: the canonical zero-SimRank graph.
    fn two_arm() -> DiGraph {
        DiGraph::from_edges(5, &[(2, 1), (1, 0), (2, 3), (3, 4)]).unwrap()
    }

    /// The paper's Related Work claim: none of the variants fixes the
    /// zero-similarity issue — only SimRank* does.
    #[test]
    fn none_of_the_variants_fix_zero_similarity() {
        let g = two_arm();
        let k = 10;
        // (1, 4) = (a_{-1}, a_2): no symmetric in-link path.
        let spp = simrank_plus_plus(&g, 0.8, k);
        assert_eq!(spp.score(1, 4), 0.0, "SimRank++ still zero");
        let psr = p_simrank(&g, 0.8, k);
        assert_eq!(psr.score(1, 4), 0.0, "P-SimRank still zero");
        let ms = matchsim_greedy(&g, k);
        assert_eq!(ms.score(1, 4), 0.0, "MatchSim still zero");
        let star = geometric::iterate(&g, &SimStarParams::new(0.8, k));
        assert!(star.score(1, 4) > 0.0, "SimRank* fixes it");
    }

    #[test]
    fn evidence_rescaling_monotone_in_common_neighbors() {
        // Out-star with 2 hubs: leaves share both hubs; evidence with 2
        // common in-neighbors (3/4) > evidence with 1 (1/2).
        // 0,1 -> {2,3}; 4 -> {5} ... compare (2,3) [2 common] against a pair
        // sharing one predecessor.
        let g = DiGraph::from_edges(7, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 5), (4, 6)]).unwrap();
        let spp = simrank_plus_plus(&g, 0.8, 8);
        let sr = crate::simrank::simrank(&g, 0.8, 8);
        // evidence(2,3) = 1 - 2^-2 = .75; evidence(5,6) = .5
        assert!((spp.score(2, 3) - 0.75 * sr.score(2, 3)).abs() < 1e-12);
        assert!((spp.score(5, 6) - 0.5 * sr.score(5, 6)).abs() < 1e-12);
    }

    #[test]
    fn p_simrank_identical_insets_maximal() {
        // Nodes with identical in-neighbor sets have J = 1 ⇒ s = C.
        let g = DiGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let s = p_simrank(&g, 0.8, 6);
        assert!((s.score(2, 3) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn matchsim_identical_insets_score_one() {
        // MatchSim of twins is |matching|/max = 1 (perfect self-matching).
        let g = DiGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let s = matchsim_greedy(&g, 6);
        assert!((s.score(2, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matchsim_penalises_degree_mismatch() {
        // a has 1 in-neighbor, b has 3 (one shared): matching weight ≤ 1,
        // denominator 3.
        let g = DiGraph::from_edges(6, &[(0, 4), (0, 5), (1, 5), (2, 5)]).unwrap();
        let s = matchsim_greedy(&g, 4);
        assert!(s.score(4, 5) <= 1.0 / 3.0 + 1e-12);
        assert!(s.score(4, 5) > 0.0);
    }

    #[test]
    fn all_variants_symmetric_and_bounded() {
        let g = DiGraph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (4, 5), (5, 0), (2, 5)],
        )
        .unwrap();
        for s in [simrank_plus_plus(&g, 0.6, 6), p_simrank(&g, 0.6, 6), matchsim_greedy(&g, 6)] {
            assert!(s.matrix().is_symmetric(1e-12));
            assert!(s.max_norm() <= 1.0 + 1e-12);
        }
    }
}
