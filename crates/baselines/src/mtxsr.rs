//! mtx-SR — low-rank SVD SimRank (Li et al., "Fast computation of SimRank
//! for static and dynamic information networks", EDBT'10).
//!
//! Factor the backward transition `Q ≈ U Σ Vᵀ` at rank `r`; substituting
//! into the SimRank fixed point `S = C·Q S Qᵀ + (1−C)·I` gives the compressed
//! `r×r` fixed point
//!
//! ```text
//! S = (1−C)·I + C·U M Uᵀ,
//! M = (1−C)·Σ(VᵀV)Σ + C·B M Bᵀ = (1−C)·Σ² + C·B M Bᵀ,   B = Σ Vᵀ U
//! ```
//!
//! solved by fixed-point iteration on `r×r` matrices. The point of carrying
//! this baseline is the paper's Figure 6(e)/(h): the SVD is expensive and
//! `U M Uᵀ` densifies the similarity matrix, exploding memory — which is
//! exactly what our memory experiment reproduces.

use simrank_star::SimilarityMatrix;
use ssr_graph::DiGraph;
use ssr_linalg::svd::truncated_svd;
use ssr_linalg::{solve::solve_discrete_fixed_point, Csr, Dense};

/// Configuration of the mtx-SR baseline.
#[derive(Debug, Clone, Copy)]
pub struct MtxSrParams {
    /// Damping factor `C`.
    pub c: f64,
    /// Truncation rank `r`.
    pub rank: usize,
    /// Block-power iterations for the SVD.
    pub svd_iters: usize,
    /// Seed of the SVD start block.
    pub seed: u64,
    /// Tolerance of the `r×r` fixed point.
    pub fp_tol: f64,
}

impl Default for MtxSrParams {
    fn default() -> Self {
        MtxSrParams { c: 0.6, rank: 8, svd_iters: 25, seed: 0x5eed, fp_tol: 1e-12 }
    }
}

/// Runs mtx-SR, returning the (dense) approximate SimRank matrix.
pub fn mtx_simrank(g: &DiGraph, params: &MtxSrParams) -> SimilarityMatrix {
    assert!(params.c > 0.0 && params.c < 1.0, "damping factor must be in (0,1)");
    assert!(params.rank >= 1, "rank must be positive");
    let q = Csr::backward_transition(g);
    let svd = truncated_svd(&q, params.rank, params.svd_iters, params.seed);
    let r = svd.sigma.len();
    let n = g.node_count();

    // B = Σ Vᵀ U  (r×r).
    let mut vtu = Dense::zeros(r, r);
    for i in 0..r {
        for j in 0..r {
            let mut acc = 0.0;
            for k in 0..n {
                acc += svd.v.get(k, i) * svd.u.get(k, j);
            }
            vtu.set(i, j, acc);
        }
    }
    let mut b = Dense::zeros(r, r);
    for i in 0..r {
        for j in 0..r {
            b.set(i, j, svd.sigma[i] * vtu.get(i, j));
        }
    }
    // RHS = (1−C)·Σ².
    let mut rhs = Dense::zeros(r, r);
    for i in 0..r {
        rhs.set(i, i, (1.0 - params.c) * svd.sigma[i] * svd.sigma[i]);
    }
    let (m, _iters) = solve_discrete_fixed_point(&rhs, &b, params.c, params.fp_tol, 10_000);

    // S = (1−C)·I + C·U M Uᵀ — dense n×n materialisation (the memory cost
    // the paper criticises).
    let um = svd.u.matmul(&m);
    let mut s = um.matmul(&svd.u.transpose());
    s.scale(params.c);
    s.add_diagonal(1.0 - params.c);
    SimilarityMatrix::from_dense(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simrank::simrank;

    fn fig1() -> DiGraph {
        DiGraph::from_edges(
            11,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 5),
                (1, 6),
                (1, 8),
                (3, 2),
                (3, 6),
                (3, 8),
                (4, 7),
                (4, 8),
                (5, 3),
                (7, 8),
                (9, 7),
                (9, 8),
                (10, 7),
                (10, 8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn full_rank_approximates_simrank() {
        // At full rank the SVD is (numerically) exact, so mtx-SR must agree
        // with iterated SimRank.
        let g = fig1();
        let exact = simrank(&g, 0.6, 40);
        let p = MtxSrParams { rank: 11, svd_iters: 60, ..Default::default() };
        let approx = mtx_simrank(&g, &p);
        let diff = exact.max_diff(&approx);
        assert!(diff < 0.02, "full-rank mtx-SR should track SimRank, diff = {diff}");
    }

    #[test]
    fn low_rank_is_an_approximation_but_bounded() {
        let g = fig1();
        let p = MtxSrParams { rank: 3, ..Default::default() };
        let s = mtx_simrank(&g, &p);
        // Low rank loses accuracy but must stay finite and roughly in range.
        assert!(s.max_norm() <= 1.5);
        for v in 0..11u32 {
            assert!(s.score(v, v) > 0.0);
        }
    }

    #[test]
    fn deterministic() {
        let g = fig1();
        let p = MtxSrParams::default();
        let a = mtx_simrank(&g, &p);
        let b = mtx_simrank(&g, &p);
        assert!(a.matrix().approx_eq(b.matrix(), 0.0));
    }

    #[test]
    fn rank_improves_accuracy() {
        let g = fig1();
        let exact = simrank(&g, 0.6, 40);
        let lo = mtx_simrank(&g, &MtxSrParams { rank: 2, svd_iters: 60, ..Default::default() });
        let hi = mtx_simrank(&g, &MtxSrParams { rank: 10, svd_iters: 60, ..Default::default() });
        assert!(
            exact.max_diff(&hi) <= exact.max_diff(&lo) + 1e-9,
            "higher rank must not be worse: lo={} hi={}",
            exact.max_diff(&lo),
            exact.max_diff(&hi)
        );
    }
}
