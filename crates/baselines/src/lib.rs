//! # ssr-baselines — every comparator in the paper's evaluation
//!
//! | Paper name | Here | Notes |
//! |---|---|---|
//! | SimRank (psum-SR, Lizorkin et al.) | [`simrank::simrank`] | matrix form Eq. (3)/(4); partial-sums-memoization cost `O(Knm)` |
//! | SimRank (naive, Jeh & Widom Eq. 1–2) | [`simrank::simrank_naive`], [`simrank::simrank_jeh_widom`] | `O(Kd²n²)` reference + the diag-pinned iterative variant |
//! | P-Rank (psum-PR, Zhao et al.) | [`prank::prank`] | in- and out-link recursion, weight λ |
//! | RWR (Tong et al.) / PPR | [`rwr::rwr_matrix`], [`rwr::rwr_single`], [`rwr::ppr`] | power iteration on `(1−c)(I − cW)^{-1}` |
//! | mtx-SR (Li et al., EDBT'10) | [`mtxsr::mtx_simrank`] | rank-`r` SVD SimRank; dense output (the paper's Fig. 6(h) memory blow-up) |
//! | Co-citation / coupling (Small '73, Kessler '63) | [`cocitation`] | the rudimentary measures SimRank generalises |
//! | SimRank++ / P-SimRank / MatchSim (related work) | [`variants`] | variants that still do NOT fix zero-similarity (tested) |
//!
//! The Figure 1 walk-through pins variants: the paper's reported
//! `s(i, h) = .044` at `C = 0.8` is reproduced exactly by the **matrix form**
//! (diagonal `(1−C)·I`, *not* pinned to 1), which is therefore the default
//! here and what `psum-SR` means throughout the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cocitation;
pub mod mtxsr;
pub mod prank;
pub mod rwr;
pub mod simrank;
pub mod variants;
