//! Random Walk with Restart (Tong, Faloutsos, Pan — ICDM'06) and
//! Personalized PageRank.
//!
//! ```text
//! S_rwr = (1−c) · (I − c·W)^{-1},   W = row-normalised adjacency
//! ```
//!
//! `S_rwr[i][j]` aggregates weighted *unidirectional* paths `i → … → j` —
//! the power-series view (Eq. 6) behind the paper's argument that RWR has
//! its own "zero-similarity" problem (`s_rwr(i,j) = 0` iff no directed path
//! `i → j`) and is asymmetric (`s(Me, Father) = 0 ≠ s(Father, Me)`).

use simrank_star::SimilarityMatrix;
use ssr_graph::{DiGraph, NodeId};
use ssr_linalg::{Csr, Dense};

/// All-pairs RWR by truncated power series:
/// `S_k = (1−c) Σ_{l=0}^{k} c^l W^l` (converges to the closed form as
/// `k → ∞`; the tail is bounded by `c^{k+1}` like SimRank's).
pub fn rwr_matrix(g: &DiGraph, c: f64, k: usize) -> SimilarityMatrix {
    assert!(c > 0.0 && c < 1.0, "restart damping must be in (0,1)");
    let n = g.node_count();
    let w = Csr::forward_transition(g);
    // Accumulate S = (1−c) Σ c^l W^l with the recurrence M_{l+1} = c·W·M_l.
    let mut m = Dense::identity(n);
    let mut s = Dense::identity(n);
    for _ in 0..k {
        m = w.mul_dense(&m);
        m.scale(c);
        s.add_assign(&m);
    }
    s.scale(1.0 - c);
    SimilarityMatrix::from_dense(s)
}

/// Single-source RWR vector `r_q` (scores of all nodes w.r.t. query `q`),
/// by power iteration `r ← c·Wᵀ r + (1−c)·e_q` to a fixed-point tolerance.
///
/// Note the transpose: `r[j] = S_rwr[q][j]` sums paths from `q` *to* `j`.
pub fn rwr_single(g: &DiGraph, c: f64, q: NodeId, tol: f64, max_iters: usize) -> Vec<f64> {
    assert!(c > 0.0 && c < 1.0, "restart damping must be in (0,1)");
    let n = g.node_count();
    let w = Csr::forward_transition(g);
    let mut r = vec![0.0; n];
    r[q as usize] = 1.0 - c;
    for _ in 0..max_iters {
        // next = c · (rᵀ W)ᵀ + (1−c) e_q  — row-vector times W keeps the
        // "paths out of q" direction.
        let mut next = w.vec_mul(&r);
        for v in next.iter_mut() {
            *v *= c;
        }
        next[q as usize] += 1.0 - c;
        let diff = r.iter().zip(&next).fold(0.0f64, |acc, (a, b)| acc.max((a - b).abs()));
        r = next;
        if diff <= tol {
            break;
        }
    }
    r
}

/// Personalized PageRank with restart distribution `personalization`
/// (must sum to 1). RWR is the special case of a single-point distribution.
pub fn ppr(g: &DiGraph, c: f64, personalization: &[f64], tol: f64, max_iters: usize) -> Vec<f64> {
    assert!(c > 0.0 && c < 1.0, "restart damping must be in (0,1)");
    let n = g.node_count();
    assert_eq!(personalization.len(), n, "personalization length mismatch");
    let total: f64 = personalization.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "personalization must sum to 1");
    let w = Csr::forward_transition(g);
    let mut r: Vec<f64> = personalization.iter().map(|p| p * (1.0 - c)).collect();
    for _ in 0..max_iters {
        let mut next = w.vec_mul(&r);
        for (v, p) in next.iter_mut().zip(personalization) {
            *v = *v * c + (1.0 - c) * p;
        }
        let diff = r.iter().zip(&next).fold(0.0f64, |acc, (a, b)| acc.max((a - b).abs()));
        r = next;
        if diff <= tol {
            break;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> DiGraph {
        DiGraph::from_edges(
            11,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 5),
                (1, 6),
                (1, 8),
                (3, 2),
                (3, 6),
                (3, 8),
                (4, 7),
                (4, 8),
                (5, 3),
                (7, 8),
                (9, 7),
                (9, 8),
                (10, 7),
                (10, 8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure1_zero_nonzero_pattern() {
        let s = rwr_matrix(&fig1(), 0.8, 25);
        // RWR column of Figure 1: (h,d)=0, (g,a)=0, (g,b)=0, (i,a)=0,
        // (i,h)=0; (a,f)≠0, (a,c)≠0.
        assert_eq!(s.score(7, 3), 0.0);
        assert_eq!(s.score(6, 0), 0.0);
        assert_eq!(s.score(6, 1), 0.0);
        assert_eq!(s.score(8, 0), 0.0);
        assert_eq!(s.score(8, 7), 0.0);
        assert!(s.score(0, 5) > 0.0); // a → b → f
        assert!(s.score(0, 2) > 0.0); // a → b → c, a → d → c
    }

    #[test]
    fn rwr_is_asymmetric() {
        // §3.1: "RWR fails to produce symmetric similarity" — Father→Me
        // has a path but Me→Father does not.
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let s = rwr_matrix(&g, 0.6, 20);
        assert!(s.score(0, 1) > 0.0);
        assert_eq!(s.score(1, 0), 0.0);
    }

    #[test]
    fn single_matches_matrix_row() {
        let g = fig1();
        let s = rwr_matrix(&g, 0.6, 60);
        let r = rwr_single(&g, 0.6, 0, 1e-13, 500);
        #[allow(clippy::needless_range_loop)]
        for j in 0..g.node_count() {
            assert!(
                (s.score(0, j as u32) - r[j]).abs() < 1e-9,
                "mismatch at j={j}: {} vs {}",
                s.score(0, j as u32),
                r[j]
            );
        }
    }

    #[test]
    fn ppr_point_mass_equals_rwr() {
        let g = fig1();
        let mut pers = vec![0.0; 11];
        pers[0] = 1.0;
        let p = ppr(&g, 0.6, &pers, 1e-13, 500);
        let r = rwr_single(&g, 0.6, 0, 1e-13, 500);
        for (a, b) in p.iter().zip(&r) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn scores_bounded_and_diag_positive() {
        let s = rwr_matrix(&fig1(), 0.8, 30);
        assert!(s.max_norm() <= 1.0 + 1e-9);
        for v in 0..11u32 {
            assert!(s.score(v, v) >= 1.0 - 0.8 - 1e-12); // restart mass
        }
    }

    #[test]
    fn rwr_row_sums_bounded_by_one() {
        // Each row of (1−c)(I − cW)^{-1} sums to ≤ 1 (=1 when no dangling
        // nodes are reachable).
        let s = rwr_matrix(&fig1(), 0.6, 60);
        for i in 0..11 {
            let sum: f64 = (0..11).map(|j| s.score(i, j as u32)).sum();
            assert!(sum <= 1.0 + 1e-9, "row {i} sums to {sum}");
        }
    }
}
