//! SimRank (Jeh & Widom, KDD'02) in the variants the paper compares against.
//!
//! * [`simrank`] — the **matrix form** `S = C·Q S Qᵀ + (1−C)·I` (Eq. 3),
//!   iterated with partial-sums memoization à la Lizorkin et al. (psum-SR).
//!   Each iteration performs the two summations of Eq. (16) as two sparse
//!   kernel applications — `O(n(m+n))` each, i.e. `O(Knm)` total, exactly
//!   the psum-SR complexity. (SimRank\* needs only *one* per iteration,
//!   which is the constant-factor edge Theorem 2 buys.)
//! * [`simrank_jeh_widom`] — the original iterative form (Eq. 1–2) whose
//!   diagonal is pinned to 1 every iteration.
//! * [`simrank_naive`] — literal `O(K d² n²)` nested-loop evaluation of
//!   Eq. (2), kept as a correctness oracle for the fast paths.

use simrank_star::{PlainRightMultiplier, RightMultiplier, SimilarityMatrix};
use ssr_graph::DiGraph;
use ssr_linalg::Dense;

/// One SimRank matrix-form step: `S ← C · Q S Qᵀ + (1−C)·I`.
///
/// Uses the symmetric-input identity `Q S Qᵀ = (P Qᵀ)ᵀ·…` unrolled as two
/// right-kernel applications: `P = S Qᵀ`, then `Q P = (Pᵀ Qᵀ)ᵀ`.
fn step_matrix(kernel: &PlainRightMultiplier, s: &Dense, c: f64) -> Dense {
    let p = kernel.apply(s); // P = S Qᵀ
    let mut qp = kernel.apply(&p.transpose()).transpose(); // Q P
    qp.scale(c);
    qp.add_diagonal(1.0 - c);
    qp
}

/// psum-SR: SimRank matrix form, `k` iterations from `S₀ = (1−C)·I`.
pub fn simrank(g: &DiGraph, c: f64, k: usize) -> SimilarityMatrix {
    assert!(c > 0.0 && c < 1.0, "damping factor must be in (0,1)");
    let kernel = PlainRightMultiplier::new(g);
    let mut s = Dense::scaled_identity(g.node_count(), 1.0 - c);
    for _ in 0..k {
        s = step_matrix(&kernel, &s, c);
    }
    SimilarityMatrix::from_dense(s)
}

/// Jeh–Widom iterative SimRank (Eq. 1–2): like the matrix form but the
/// diagonal is reset to exactly 1 after every iteration, starting from `I`.
pub fn simrank_jeh_widom(g: &DiGraph, c: f64, k: usize) -> SimilarityMatrix {
    assert!(c > 0.0 && c < 1.0, "damping factor must be in (0,1)");
    let kernel = PlainRightMultiplier::new(g);
    let n = g.node_count();
    let mut s = Dense::identity(n);
    for _ in 0..k {
        let p = kernel.apply(&s);
        let mut next = kernel.apply(&p.transpose()).transpose();
        next.scale(c);
        for i in 0..n {
            next.set(i, i, 1.0);
        }
        s = next;
    }
    SimilarityMatrix::from_dense(s)
}

/// Literal nested-loop SimRank (Eq. 2), diagonal pinned to 1. `O(K d² n²)` —
/// correctness oracle for small graphs only.
pub fn simrank_naive(g: &DiGraph, c: f64, k: usize) -> SimilarityMatrix {
    assert!(c > 0.0 && c < 1.0, "damping factor must be in (0,1)");
    let n = g.node_count();
    let mut s = Dense::identity(n);
    for _ in 0..k {
        let mut next = Dense::zeros(n, n);
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    next.set(a, b, 1.0);
                    continue;
                }
                let ia = g.in_neighbors(a as u32);
                let ib = g.in_neighbors(b as u32);
                if ia.is_empty() || ib.is_empty() {
                    continue;
                }
                let mut acc = 0.0;
                for &x in ia {
                    for &y in ib {
                        acc += s.get(x as usize, y as usize);
                    }
                }
                next.set(a, b, c * acc / (ia.len() * ib.len()) as f64);
            }
        }
        s = next;
    }
    SimilarityMatrix::from_dense(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> DiGraph {
        DiGraph::from_edges(
            11,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 5),
                (1, 6),
                (1, 8),
                (3, 2),
                (3, 6),
                (3, 8),
                (4, 7),
                (4, 8),
                (5, 3),
                (7, 8),
                (9, 7),
                (9, 8),
                (10, 7),
                (10, 8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matrix_form_reproduces_paper_value() {
        // Figure 1 table: SR(i, h) = .044 at C = 0.8 (i = 8, h = 7).
        let s = simrank(&fig1(), 0.8, 15);
        assert!((s.score(8, 7) - 0.044).abs() < 0.0015, "s(i, h) = {}, want ≈ .044", s.score(8, 7));
    }

    #[test]
    fn matrix_form_zero_pairs_match_figure1() {
        let s = simrank(&fig1(), 0.8, 15);
        // Column SR of Figure 1: these pairs are exactly 0.
        for &(a, b) in &[(7u32, 3u32), (0, 5), (0, 2), (6, 0), (8, 0)] {
            assert_eq!(s.score(a, b), 0.0, "SR({a},{b}) should be 0");
        }
    }

    #[test]
    fn matrix_form_matches_series() {
        // The matrix iteration must equal the power-series partial sum
        // (Lemma 2): S_k = (1−C) Σ_{l≤k} C^l Q^l (Qᵀ)^l.
        let g = fig1();
        for k in 0..5 {
            let it = simrank(&g, 0.6, k);
            let series = simrank_star::series::simrank_partial_sum(&g, 0.6, k);
            assert!(
                it.matrix().approx_eq(&series, 1e-10),
                "k={k} diff={}",
                it.matrix().max_diff(&series)
            );
        }
    }

    #[test]
    fn jeh_widom_diag_is_one() {
        let s = simrank_jeh_widom(&fig1(), 0.8, 6);
        for v in 0..11 {
            assert_eq!(s.score(v, v), 1.0);
        }
    }

    #[test]
    fn jeh_widom_matches_naive() {
        let g = fig1();
        for k in 1..4 {
            let fast = simrank_jeh_widom(&g, 0.7, k);
            let naive = simrank_naive(&g, 0.7, k);
            assert!(
                fast.matrix().approx_eq(naive.matrix(), 1e-10),
                "k={k} diff={}",
                fast.matrix().max_diff(naive.matrix())
            );
        }
    }

    #[test]
    fn symmetric_and_in_range() {
        let s = simrank(&fig1(), 0.8, 10);
        assert!(s.matrix().is_symmetric(1e-12));
        assert!(s.max_norm() <= 1.0 + 1e-12);
    }

    #[test]
    fn sourceless_node_rows_zero_offdiag() {
        let g = fig1();
        let s = simrank(&g, 0.8, 10);
        // a (=0), j (=9), k (=10) have I = ∅: their off-diagonal scores are 0
        // and self-score is (1−C).
        for &v in &[0u32, 9, 10] {
            assert!((s.score(v, v) - 0.2).abs() < 1e-12);
            for u in 0..11u32 {
                if u != v {
                    assert_eq!(s.score(v, u), 0.0);
                }
            }
        }
    }

    #[test]
    fn monotone_in_iterations() {
        let g = fig1();
        let s3 = simrank(&g, 0.6, 3);
        let s6 = simrank(&g, 0.6, 6);
        for i in 0..11 {
            for j in 0..11 {
                assert!(s6.score(i, j) >= s3.score(i, j) - 1e-12);
            }
        }
    }
}
