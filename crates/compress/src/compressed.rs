use ssr_graph::NodeId;

/// The compressed graph `Ĝ = (T ∪ B ∪ V̂, Ê)` produced by edge concentration.
///
/// For every node `x` of the original graph, the in-neighbor set decomposes
/// as the **disjoint** union
///
/// ```text
/// I(x) = direct(x)  ∪  ⋃_{v ∈ via(x)} fanin(v)
/// ```
///
/// where `v` ranges over the concentrators attached to `x`. Disjointness is
/// what makes the memoized partial sums of Algorithm 1 exact: each
/// in-neighbor contributes exactly once.
#[derive(Debug, Clone)]
pub struct CompressedGraph {
    n: usize,
    original_edges: usize,
    // concentrator fan-ins, CSR-packed
    conc_offsets: Vec<usize>,
    conc_fanin: Vec<NodeId>,
    // per original node: direct in-neighbors, CSR-packed
    direct_offsets: Vec<usize>,
    direct: Vec<NodeId>,
    // per original node: attached concentrator ids, CSR-packed
    via_offsets: Vec<usize>,
    via: Vec<u32>,
}

impl CompressedGraph {
    /// Assembles a compressed graph from per-node direct lists and per-node
    /// concentrator attachments. Used by the miner; not public API.
    pub(crate) fn assemble(
        n: usize,
        original_edges: usize,
        fanins: Vec<Vec<NodeId>>,
        direct_per_node: Vec<Vec<NodeId>>,
        via_per_node: Vec<Vec<u32>>,
    ) -> Self {
        debug_assert_eq!(direct_per_node.len(), n);
        debug_assert_eq!(via_per_node.len(), n);
        let mut conc_offsets = Vec::with_capacity(fanins.len() + 1);
        let mut conc_fanin = Vec::new();
        conc_offsets.push(0);
        for f in &fanins {
            conc_fanin.extend_from_slice(f);
            conc_offsets.push(conc_fanin.len());
        }
        let mut direct_offsets = Vec::with_capacity(n + 1);
        let mut direct = Vec::new();
        direct_offsets.push(0);
        for d in &direct_per_node {
            direct.extend_from_slice(d);
            direct_offsets.push(direct.len());
        }
        let mut via_offsets = Vec::with_capacity(n + 1);
        let mut via = Vec::new();
        via_offsets.push(0);
        for v in &via_per_node {
            via.extend_from_slice(v);
            via_offsets.push(via.len());
        }
        CompressedGraph {
            n,
            original_edges,
            conc_offsets,
            conc_fanin,
            direct_offsets,
            direct,
            via_offsets,
            via,
        }
    }

    /// Number of original-graph nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of concentrator nodes `|V̂|`.
    pub fn concentrator_count(&self) -> usize {
        self.conc_offsets.len() - 1
    }

    /// `|E|` of the original graph.
    pub fn original_edge_count(&self) -> usize {
        self.original_edges
    }

    /// `m̃ = |Ê|`: direct edges + node→concentrator attachments +
    /// concentrator fan-in edges. This is the per-`a` cost (additions +
    /// assignments) of one memoized partial-sum sweep.
    pub fn compressed_edge_count(&self) -> usize {
        self.direct.len() + self.via.len() + self.conc_fanin.len()
    }

    /// The paper's compression ratio `(1 − m̃/m) · 100%` (footnote 15),
    /// as a fraction in `[0, 1)`. Zero when nothing compressed.
    pub fn compression_ratio(&self) -> f64 {
        if self.original_edges == 0 {
            return 0.0;
        }
        1.0 - self.compressed_edge_count() as f64 / self.original_edges as f64
    }

    /// Fan-in set `π(v)` of concentrator `v` — the top-side nodes it
    /// aggregates.
    pub fn fanin(&self, v: u32) -> &[NodeId] {
        let v = v as usize;
        &self.conc_fanin[self.conc_offsets[v]..self.conc_offsets[v + 1]]
    }

    /// In-neighbors of `x` that remained uncompressed.
    pub fn direct_in(&self, x: NodeId) -> &[NodeId] {
        let x = x as usize;
        &self.direct[self.direct_offsets[x]..self.direct_offsets[x + 1]]
    }

    /// Concentrators attached to `x`.
    pub fn via(&self, x: NodeId) -> &[u32] {
        let x = x as usize;
        &self.via[self.via_offsets[x]..self.via_offsets[x + 1]]
    }

    /// Reconstructs `I(x)` (sorted) — the round-trip used by tests and by
    /// the decompression invariant.
    pub fn decompress_in_neighbors(&self, x: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.direct_in(x).to_vec();
        for &c in self.via(x) {
            out.extend_from_slice(self.fanin(c));
        }
        out.sort_unstable();
        out
    }

    /// `|I(x)|` without materialising the set.
    pub fn in_degree(&self, x: NodeId) -> usize {
        self.direct_in(x).len() + self.via(x).iter().map(|&c| self.fanin(c).len()).sum::<usize>()
    }

    /// Iterates concentrator ids.
    pub fn concentrators(&self) -> impl Iterator<Item = u32> {
        0..self.concentrator_count() as u32
    }

    /// Estimated resident bytes (Fig. 6(h) accounting).
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.conc_offsets.len() + self.direct_offsets.len() + self.via_offsets.len())
            * size_of::<usize>()
            + (self.conc_fanin.len() + self.direct.len()) * size_of::<NodeId>()
            + self.via.len() * size_of::<u32>()
    }

    /// One-stop cost accounting for reporting surfaces (CLI output, bench
    /// JSON): edge counts, the footnote-15 ratio, and resident bytes — so
    /// memoization wins are visible without running a benchmark.
    pub fn size_report(&self) -> SizeReport {
        SizeReport {
            original_edges: self.original_edge_count(),
            compressed_edges: self.compressed_edge_count(),
            concentrators: self.concentrator_count(),
            ratio: self.compression_ratio(),
            estimated_bytes: self.estimated_bytes(),
        }
    }
}

/// Summary of what edge concentration bought on one graph
/// (see [`CompressedGraph::size_report`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeReport {
    /// `m`: edges of the original graph.
    pub original_edges: usize,
    /// `m̃`: edges of the compressed graph (the per-row kernel cost).
    pub compressed_edges: usize,
    /// `|V̂|`: concentrator nodes introduced.
    pub concentrators: usize,
    /// `(1 − m̃/m)` as a fraction in `[0, 1)`.
    pub ratio: f64,
    /// Estimated resident bytes of the compressed index.
    pub estimated_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CompressedGraph {
        // 4 nodes; node 2 and 3 share in-set {0,1} via concentrator 0;
        // node 3 additionally has direct in-neighbor 2.
        CompressedGraph::assemble(
            4,
            5,
            vec![vec![0, 1]],
            vec![vec![], vec![], vec![], vec![2]],
            vec![vec![], vec![], vec![0], vec![0]],
        )
    }

    #[test]
    fn edge_accounting() {
        let cg = tiny();
        // direct: 1, via: 2, fanin: 2 => m̃ = 5 (original also 5: no gain on
        // this toy, the miner would not have emitted it; assemble trusts).
        assert_eq!(cg.compressed_edge_count(), 5);
        assert_eq!(cg.original_edge_count(), 5);
        assert_eq!(cg.compression_ratio(), 0.0);
    }

    #[test]
    fn decompression() {
        let cg = tiny();
        assert_eq!(cg.decompress_in_neighbors(2), vec![0, 1]);
        assert_eq!(cg.decompress_in_neighbors(3), vec![0, 1, 2]);
        assert_eq!(cg.decompress_in_neighbors(0), Vec::<NodeId>::new());
        assert_eq!(cg.in_degree(3), 3);
    }

    #[test]
    fn size_report_is_consistent() {
        let cg = tiny();
        let r = cg.size_report();
        assert_eq!(r.original_edges, cg.original_edge_count());
        assert_eq!(r.compressed_edges, cg.compressed_edge_count());
        assert_eq!(r.concentrators, cg.concentrator_count());
        assert_eq!(r.ratio, cg.compression_ratio());
        assert_eq!(r.estimated_bytes, cg.estimated_bytes());
    }

    #[test]
    fn fanin_access() {
        let cg = tiny();
        assert_eq!(cg.concentrator_count(), 1);
        assert_eq!(cg.fanin(0), &[0, 1]);
        assert_eq!(cg.via(3), &[0]);
        assert_eq!(cg.direct_in(3), &[2]);
    }
}
