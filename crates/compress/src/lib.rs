//! # ssr-compress — bipartite compression via edge concentration
//!
//! Section 4.3 of the paper: the per-iteration cost of SimRank\*'s
//! fine-grained memoization equals the edge count of the induced bigraph
//! `G̃`, so we compress `G̃` by replacing each **biclique** `(X, Y)`
//! (`|X|·|Y|` edges) with a *concentrator node* (`|X| + |Y|` edges). Minimum
//! edge concentration is NP-hard (X. Lin, DAM 2000); following the paper we
//! use a frequent-itemset–flavoured greedy heuristic in the spirit of
//! Buehrer & Chellapilla (WSDM'08):
//!
//! 1. **Duplicate grouping** — bottom nodes with identical in-neighbor sets
//!    immediately form a biclique (hash-group, `O(m)`).
//! 2. **Greedy itemset growth** — seed with the most frequent remaining top
//!    node `t`, then greedily add the top node that maximises the *saving*
//!    `|X|·|Y| − |X| − |Y|` of the grown biclique, shrinking the supporting
//!    bottom set as items are added; extract when the saving is positive.
//!
//! The result is a [`CompressedGraph`] `Ĝ = (T ∪ B ∪ V̂, Ê)` that reproduces
//! every in-neighbor set *exactly* (tested by round-trip property tests) and
//! exposes the access pattern the memoized SimRank\* algorithms need:
//! per-concentrator fan-in lists and per-node `direct ∪ via` in-lists.
//!
//! ```
//! use ssr_compress::{compress, CompressOptions};
//! use ssr_graph::DiGraph;
//! // K_{2,3}: one biclique, 6 edges -> 5.
//! let g = DiGraph::from_edges(5, &[(0,2),(0,3),(0,4),(1,2),(1,3),(1,4)]).unwrap();
//! let cg = compress(&g, &CompressOptions::default());
//! assert_eq!(cg.compressed_edge_count(), 5);
//! assert_eq!(cg.concentrator_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compressed;
mod mining;

pub use compressed::{CompressedGraph, SizeReport};
pub use mining::{compress, compress_with_bicliques, Biclique, CompressOptions};
