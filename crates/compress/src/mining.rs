use crate::CompressedGraph;
use ssr_graph::{DiGraph, NodeId};
use std::collections::HashMap;

/// A mined biclique `(X, Y)`: every top node in `tops` links to every bottom
/// node in `bottoms` in the induced bigraph (i.e. `tops ⊆ I(y)` for every
/// `y ∈ bottoms`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Biclique {
    /// Top-side nodes `X` (the shared in-neighbors).
    pub tops: Vec<NodeId>,
    /// Bottom-side nodes `Y` (the nodes sharing them).
    pub bottoms: Vec<NodeId>,
}

impl Biclique {
    /// Edges saved by concentrating this biclique: `|X|·|Y| − |X| − |Y|`.
    pub fn saving(&self) -> isize {
        let x = self.tops.len() as isize;
        let y = self.bottoms.len() as isize;
        x * y - x - y
    }
}

/// Tuning knobs of the edge-concentration heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressOptions {
    /// Number of duplicate-grouping + greedy-growth passes (each pass scans
    /// the whole remaining bigraph). 2 recovers almost all of the gain.
    pub max_passes: usize,
    /// Upper bound on greedy seeds examined per pass; caps worst-case time
    /// on pathological graphs.
    pub max_seeds_per_pass: usize,
    /// Skip greedy growth entirely (duplicate grouping only).
    pub greedy: bool,
}

impl Default for CompressOptions {
    fn default() -> Self {
        CompressOptions { max_passes: 2, max_seeds_per_pass: 1 << 20, greedy: true }
    }
}

/// Runs edge concentration on the induced bigraph of `g` (Definition 2 +
/// Section 4.3). See the crate docs for the algorithm.
pub fn compress(g: &DiGraph, opts: &CompressOptions) -> CompressedGraph {
    compress_with_bicliques(g, opts).0
}

/// Like [`compress`] but also returns the mined bicliques (for inspection,
/// tests, and the Figure 4 walk-through).
pub fn compress_with_bicliques(
    g: &DiGraph,
    opts: &CompressOptions,
) -> (CompressedGraph, Vec<Biclique>) {
    let n = g.node_count();
    let mut remaining: Vec<Vec<NodeId>> =
        (0..n as NodeId).map(|v| g.in_neighbors(v).to_vec()).collect();
    let mut via_per_node: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut fanins: Vec<Vec<NodeId>> = Vec::new();
    // Dedup concentrators by fan-in set so identical bicliques share one.
    let mut fanin_ids: HashMap<Vec<NodeId>, u32> = HashMap::new();
    let mut bicliques: Vec<Biclique> = Vec::new();

    for _pass in 0..opts.max_passes {
        let mut extracted_any = false;
        extracted_any |= duplicate_grouping_pass(
            &mut remaining,
            &mut via_per_node,
            &mut fanins,
            &mut fanin_ids,
            &mut bicliques,
        );
        if opts.greedy {
            extracted_any |= greedy_pass(
                &mut remaining,
                &mut via_per_node,
                &mut fanins,
                &mut fanin_ids,
                &mut bicliques,
                opts.max_seeds_per_pass,
            );
        }
        if !extracted_any {
            break;
        }
    }

    let cg = CompressedGraph::assemble(n, g.edge_count(), fanins, remaining, via_per_node);
    (cg, bicliques)
}

/// Creates (or reuses) a concentrator for fan-in `tops` and attaches it to
/// every node in `bottoms`, removing `tops` from their remaining sets.
fn extract(
    tops: Vec<NodeId>,
    bottoms: Vec<NodeId>,
    remaining: &mut [Vec<NodeId>],
    via_per_node: &mut [Vec<u32>],
    fanins: &mut Vec<Vec<NodeId>>,
    fanin_ids: &mut HashMap<Vec<NodeId>, u32>,
    bicliques: &mut Vec<Biclique>,
) {
    let conc = *fanin_ids.entry(tops.clone()).or_insert_with(|| {
        fanins.push(tops.clone());
        (fanins.len() - 1) as u32
    });
    for &y in &bottoms {
        let set = &mut remaining[y as usize];
        set.retain(|v| tops.binary_search(v).is_err());
        via_per_node[y as usize].push(conc);
    }
    bicliques.push(Biclique { tops, bottoms });
}

/// Phase 1: hash-group bottoms by identical remaining in-sets.
fn duplicate_grouping_pass(
    remaining: &mut [Vec<NodeId>],
    via_per_node: &mut [Vec<u32>],
    fanins: &mut Vec<Vec<NodeId>>,
    fanin_ids: &mut HashMap<Vec<NodeId>, u32>,
    bicliques: &mut Vec<Biclique>,
) -> bool {
    let mut groups: HashMap<&[NodeId], Vec<NodeId>> = HashMap::new();
    for (y, set) in remaining.iter().enumerate() {
        if set.len() >= 2 {
            groups.entry(set.as_slice()).or_default().push(y as NodeId);
        }
    }
    let mut todo: Vec<(Vec<NodeId>, Vec<NodeId>)> = groups
        .into_iter()
        .filter(|(set, bottoms)| {
            let x = set.len() as isize;
            let y = bottoms.len() as isize;
            y >= 2 && x * y - x - y > 0
        })
        .map(|(set, bottoms)| (set.to_vec(), bottoms))
        .collect();
    // Deterministic order regardless of hash iteration.
    todo.sort();
    let any = !todo.is_empty();
    for (tops, bottoms) in todo {
        extract(tops, bottoms, remaining, via_per_node, fanins, fanin_ids, bicliques);
    }
    any
}

/// Phase 2: frequent-itemset-style greedy biclique growth.
fn greedy_pass(
    remaining: &mut [Vec<NodeId>],
    via_per_node: &mut [Vec<u32>],
    fanins: &mut Vec<Vec<NodeId>>,
    fanin_ids: &mut HashMap<Vec<NodeId>, u32>,
    bicliques: &mut Vec<Biclique>,
    max_seeds: usize,
) -> bool {
    // Inverted index: top node -> bottoms whose remaining set contains it.
    let mut index: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (y, set) in remaining.iter().enumerate() {
        if set.len() >= 2 {
            for &t in set {
                index.entry(t).or_default().push(y as NodeId);
            }
        }
    }
    let mut seeds: Vec<(usize, NodeId)> =
        index.iter().map(|(&t, ys)| (ys.len(), t)).filter(|&(f, _)| f >= 2).collect();
    // Highest-frequency tops first; id tiebreak for determinism.
    seeds.sort_by_key(|&(f, t)| (std::cmp::Reverse(f), t));
    seeds.truncate(max_seeds);

    let mut any = false;
    for (_, seed) in seeds {
        // Re-validate against current remaining sets (earlier extractions
        // may have consumed entries).
        let Some(candidates) = index.get(&seed) else { continue };
        let mut bottoms: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|&y| remaining[y as usize].binary_search(&seed).is_ok())
            .collect();
        if bottoms.len() < 2 {
            continue;
        }
        let mut tops = vec![seed];
        loop {
            // Frequency of each candidate extension item within `bottoms`.
            let mut freq: HashMap<NodeId, usize> = HashMap::new();
            for &y in &bottoms {
                for &u in &remaining[y as usize] {
                    if tops.binary_search(&u).is_err() {
                        *freq.entry(u).or_insert(0) += 1;
                    }
                }
            }
            let Some((&best, &count)) = freq
                .iter()
                .max_by_key(|&(&u, &c)| (c, std::cmp::Reverse(u)))
                .filter(|&(_, &c)| c >= 2)
            else {
                break;
            };
            let cur_saving = {
                let x = tops.len() as isize;
                let y = bottoms.len() as isize;
                x * y - x - y
            };
            let new_saving = {
                let x = tops.len() as isize + 1;
                let y = count as isize;
                x * y - x - y
            };
            if new_saving <= cur_saving {
                break;
            }
            tops.push(best);
            tops.sort_unstable();
            bottoms.retain(|&y| remaining[y as usize].binary_search(&best).is_ok());
        }
        let saving = {
            let x = tops.len() as isize;
            let y = bottoms.len() as isize;
            x * y - x - y
        };
        if tops.len() >= 2 && bottoms.len() >= 2 && saving > 0 {
            extract(tops, bottoms, remaining, via_per_node, fanins, fanin_ids, bicliques);
            any = true;
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_ok(g: &DiGraph, cg: &CompressedGraph) {
        for v in g.nodes() {
            assert_eq!(
                cg.decompress_in_neighbors(v),
                g.in_neighbors(v).to_vec(),
                "in-set of node {v} not preserved"
            );
        }
    }

    #[test]
    fn complete_bipartite_fully_concentrates() {
        // K_{3,4}: 12 edges -> 3 + 4 = 7.
        let mut edges = Vec::new();
        for u in 0..3u32 {
            for v in 3..7u32 {
                edges.push((u, v));
            }
        }
        let g = DiGraph::from_edges(7, &edges).unwrap();
        let (cg, bicliques) = compress_with_bicliques(&g, &CompressOptions::default());
        round_trip_ok(&g, &cg);
        assert_eq!(cg.concentrator_count(), 1);
        assert_eq!(cg.compressed_edge_count(), 7);
        assert_eq!(bicliques.len(), 1);
        assert_eq!(bicliques[0].tops, vec![0, 1, 2]);
        assert_eq!(bicliques[0].saving(), 5);
    }

    #[test]
    fn no_structure_no_compression() {
        // A directed path has singleton in-sets: nothing to concentrate.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let cg = compress(&g, &CompressOptions::default());
        round_trip_ok(&g, &cg);
        assert_eq!(cg.concentrator_count(), 0);
        assert_eq!(cg.compressed_edge_count(), g.edge_count());
        assert_eq!(cg.compression_ratio(), 0.0);
    }

    #[test]
    fn two_by_two_biclique_is_not_extracted() {
        // |X|=|Y|=2 saves nothing (4 edges -> 4); the miner must skip it.
        let g = DiGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let cg = compress(&g, &CompressOptions::default());
        round_trip_ok(&g, &cg);
        assert_eq!(cg.concentrator_count(), 0);
    }

    #[test]
    fn figure4_bicliques_found() {
        // The paper's Figure 4: bicliques ({b,d},{c,g,i}) and ({e,j,k},{h,i})
        // reduce 18 edges by 2 (to 16): 6->5 for each biclique... in the
        // paper's counting the reduction is 2 edges overall.
        let g = ssr_fixture_figure1();
        let (cg, bicliques) = compress_with_bicliques(&g, &CompressOptions::default());
        round_trip_ok(&g, &cg);
        // {b,d} x {c,g,i}: b=1, d=3; c=2, g=6, i=8.
        assert!(
            bicliques.iter().any(|b| b.tops == vec![1, 3] && b.bottoms == vec![2, 6, 8]),
            "missing ({{b,d}},{{c,g,i}}), got {bicliques:?}"
        );
        // {e,j,k} x {h,i}: e=4, j=9, k=10; h=7, i=8.
        assert!(
            bicliques.iter().any(|b| b.tops == vec![4, 9, 10] && b.bottoms == vec![7, 8]),
            "missing ({{e,j,k}},{{h,i}}), got {bicliques:?}"
        );
        // Paper: |Ê| = |Ẽ| - 2 = 16.
        assert_eq!(cg.compressed_edge_count(), 16);
        assert_eq!(cg.concentrator_count(), 2);
    }

    /// Local copy of the Figure 1 graph (avoids a circular dev-dependency on
    /// ssr-gen in unit tests; the integration suite cross-checks both).
    fn ssr_fixture_figure1() -> DiGraph {
        DiGraph::from_edges(
            11,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 5),
                (1, 6),
                (1, 8),
                (3, 2),
                (3, 6),
                (3, 8),
                (4, 7),
                (4, 8),
                (5, 3),
                (7, 8),
                (9, 7),
                (9, 8),
                (10, 7),
                (10, 8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shared_fanin_reuses_concentrator() {
        // Three bottoms share {0,1,2}; a fourth set {0,1,2} appears again in
        // a second component — all should attach to one concentrator.
        let mut edges = Vec::new();
        for t in 0..3u32 {
            for b in 3..7u32 {
                edges.push((t, b));
            }
        }
        let g = DiGraph::from_edges(7, &edges).unwrap();
        let cg = compress(&g, &CompressOptions::default());
        round_trip_ok(&g, &cg);
        assert_eq!(cg.concentrator_count(), 1);
        for b in 3..7u32 {
            assert_eq!(cg.via(b), &[0]);
            assert!(cg.direct_in(b).is_empty());
        }
    }

    #[test]
    fn duplicates_only_mode() {
        let g = ssr_fixture_figure1();
        let opts = CompressOptions { greedy: false, ..Default::default() };
        let (cg, _) = compress_with_bicliques(&g, &opts);
        round_trip_ok(&g, &cg);
        // c and g share in-set {b,d} exactly => duplicate grouping gets it;
        // but |X|=2,|Y|=2 saves nothing, so only groups with gain emerge.
        assert!(cg.compressed_edge_count() <= g.edge_count());
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]).unwrap();
        let cg = compress(&g, &CompressOptions::default());
        assert_eq!(cg.compressed_edge_count(), 0);
        assert_eq!(cg.compression_ratio(), 0.0);
    }

    #[test]
    fn compression_never_increases_edges() {
        // On a denser random-ish structure the invariant m̃ <= m must hold.
        let mut edges = Vec::new();
        let mut s = 123u64;
        for _ in 0..400 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((s >> 33) % 40) as u32;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((s >> 33) % 40) as u32;
            if u != v {
                edges.push((u, v));
            }
        }
        let g = DiGraph::from_edges(40, &edges).unwrap();
        let cg = compress(&g, &CompressOptions::default());
        round_trip_ok(&g, &cg);
        assert!(cg.compressed_edge_count() <= g.edge_count());
    }
}
