//! End-to-end tests of the `simstar` binary: spawn the real executable and
//! drive a full generate → stats → query → audit → compute pipeline through
//! temp files.

use std::path::PathBuf;
use std::process::Command;

fn simstar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simstar"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("simstar_e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn run_ok(args: &[&str]) -> String {
    let out = simstar().args(args).output().expect("spawn simstar");
    assert!(
        out.status.success(),
        "simstar {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn full_pipeline() {
    let graph_path = tmp("pipeline.txt");
    let graph = graph_path.to_str().unwrap();

    // generate
    let msg = run_ok(&[
        "generate", "--kind", "citation", "--nodes", "200", "--edges", "800", "--seed", "7",
        "--output", graph,
    ]);
    assert!(msg.contains("wrote"));

    // stats
    let stats = run_ok(&["stats", "--input", graph]);
    assert!(stats.contains("nodes"));
    assert!(stats.contains("DAG-like"), "citation graph must be a DAG:\n{stats}");

    // query
    let q = run_ok(&["query", "--input", graph, "--node", "50", "--top", "5"]);
    let rows = q.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(rows, 5);

    // audit
    let audit = run_ok(&["audit", "--input", graph, "--samples", "300"]);
    assert!(audit.contains("completely dissimilar"));

    // compute with threshold to a file
    let sims_path = tmp("sims.txt");
    let sims = sims_path.to_str().unwrap();
    run_ok(&[
        "compute",
        "--input",
        graph,
        "--algo",
        "memo-gsr",
        "--k",
        "5",
        "--threshold",
        "1e-4",
        "--output",
        sims,
    ]);
    let content = std::fs::read_to_string(&sims_path).unwrap();
    assert!(content.contains("simstar compute"));
    assert!(content.lines().filter(|l| !l.starts_with('#')).count() > 0);
}

#[test]
fn allpairs_pipeline() {
    let graph_path = tmp("allpairs.txt");
    let graph = graph_path.to_str().unwrap();
    run_ok(&[
        "generate", "--kind", "citation", "--nodes", "120", "--edges", "500", "--seed", "3",
        "--output", graph,
    ]);

    // Streaming top-k over the memoized kernel, with compression stats.
    let ranked = run_ok(&[
        "allpairs",
        "--input",
        graph,
        "--top-k",
        "3",
        "--compress",
        "true",
        "--threads",
        "2",
    ]);
    assert!(ranked.contains("# compression"), "{ranked}");
    assert!(ranked.lines().filter(|l| !l.starts_with('#')).count() > 0);

    // Partial pairs for two rows must match the full matrix's rows.
    let partial = run_ok(&["allpairs", "--input", graph, "--subset", "5,9", "--k", "4"]);
    let full = run_ok(&["allpairs", "--input", graph, "--k", "4"]);
    let rows_of = |text: &str, prefix: &str| {
        text.lines()
            .filter(|l| !l.starts_with('#') && l.starts_with(prefix))
            .map(String::from)
            .collect::<Vec<_>>()
    };
    for q in ["5\t", "9\t"] {
        assert_eq!(rows_of(&partial, q), rows_of(&full, q), "rows for {q}");
    }
}

#[test]
fn no_args_prints_usage_and_exits_2() {
    let out = simstar().output().expect("spawn simstar");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn bad_flag_exits_1_with_message() {
    let out = simstar().args(["stats", "--bogus", "x"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn help_via_subcommand() {
    let h = run_ok(&["help"]);
    assert!(h.contains("COMMANDS"));
}

#[test]
fn deterministic_generation() {
    let a = run_ok(&["generate", "--kind", "er", "--nodes", "64", "--edges", "128", "--seed", "5"]);
    let b = run_ok(&["generate", "--kind", "er", "--nodes", "64", "--edges", "128", "--seed", "5"]);
    assert_eq!(a, b);
}
