//! The `simstar trace` subcommand family: offline analysis of trace
//! JSONL exports (`serve --trace-out` files, or `trace` admin-op dumps
//! written one document per line).
//!
//! Three views over the same span trees:
//!
//! * `summarize` — validates every trace (schema version, nesting
//!   invariants, required stages), then reports per-stage latency
//!   percentiles, a queue-delay vs batch-size table, and the
//!   critical-path breakdown (which stage dominated each request).
//! * `slowest` — the N slowest requests as full indented span trees.
//! * `folded` — flamegraph folded-stack lines (`path;to;span self_ns`),
//!   aggregated across traces, ready for standard flamegraph tooling.

use crate::args::{ArgError, Args};
use ssr_obs::Trace;
use ssr_serve::parse_trace_line;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The pipeline stages in execution order. Cache hits legitimately skip
/// `queue`/`engine`/`merge`, so only the first/last two are mandatory.
const STAGES: &[&str] = &["decode", "cache", "queue", "engine", "merge", "encode"];

/// Dispatches `simstar trace <action>`.
pub fn cmd_trace(rest: &[String]) -> Result<String, ArgError> {
    let Some((action, rest)) = rest.split_first() else {
        return Err(ArgError(
            "trace needs an action: `trace summarize|slowest|folded --input FILE ...`".into(),
        ));
    };
    match action.as_str() {
        "summarize" => cmd_summarize(rest),
        "slowest" => cmd_slowest(rest),
        "folded" => cmd_folded(rest),
        other => {
            Err(ArgError(format!("unknown trace action `{other}` (summarize|slowest|folded)")))
        }
    }
}

/// Reads and parses a JSONL export; any unparsable line is an error with
/// its line number (a truncated export should fail loudly, not shrink).
fn load_traces(args: &Args) -> Result<(String, Vec<Trace>), ArgError> {
    let path = args.req("input")?.to_string();
    let text =
        std::fs::read_to_string(&path).map_err(|e| ArgError(format!("reading `{path}`: {e}")))?;
    let traces = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_trace_line(l).map_err(|e| ArgError(format!("{path}:{}: {e}", i + 1))))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((path, traces))
}

/// Checks the invariants `summarize` promises about every trace it
/// reports on: the span tree nests correctly, the root is `request`,
/// and the stages a request of its kind must have are present.
fn check_trace(t: &Trace) -> Result<(), String> {
    t.validate()?;
    if t.spans[0].name != "request" {
        return Err(format!("root span is `{}`, expected `request`", t.spans[0].name));
    }
    let has = |name: &str| t.spans.iter().any(|s| s.name == name);
    for required in ["decode", "cache", "encode"] {
        if !has(required) {
            return Err(format!("missing `{required}` stage"));
        }
    }
    if t.attr("cached") == Some("false") {
        for required in ["queue", "engine", "merge"] {
            if !has(required) {
                return Err(format!("uncached request missing `{required}` stage"));
            }
        }
    }
    Ok(())
}

/// Nearest-rank percentile of a sorted slice, in microseconds.
fn pctl_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1000.0
}

/// `trace summarize`: validate everything, then aggregate.
fn cmd_summarize(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input", "min"])?;
    let (path, traces) = load_traces(&args)?;
    let min = args.get("min", 1usize)?;
    if traces.len() < min {
        return Err(ArgError(format!(
            "`{path}` holds {} trace(s), expected at least {min}",
            traces.len()
        )));
    }
    for t in &traces {
        check_trace(t).map_err(|e| ArgError(format!("trace {}: {e}", t.id)))?;
    }

    let mut out = format!("# trace summarize: {path} ({} trace(s), all valid)\n", traces.len());

    // Per-stage percentiles: one sample per trace per present stage
    // (root children only — shard/step sub-spans aggregate elsewhere),
    // plus the end-to-end total.
    let _ = writeln!(
        out,
        "{:<8} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50_us", "p90_us", "p99_us", "max_us"
    );
    let stage_rows: Vec<(&str, Vec<u64>)> = STAGES
        .iter()
        .map(|&stage| {
            let durs: Vec<u64> = traces
                .iter()
                .flat_map(|t| t.children(0).filter(|(_, s)| s.name == stage))
                .map(|(_, s)| s.dur_ns)
                .collect();
            (stage, durs)
        })
        .chain(std::iter::once(("total", traces.iter().map(|t| t.total_ns).collect::<Vec<_>>())))
        .collect();
    for (stage, mut durs) in stage_rows {
        durs.sort_unstable();
        let _ = writeln!(
            out,
            "{:<8} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            stage,
            durs.len(),
            pctl_us(&durs, 0.50),
            pctl_us(&durs, 0.90),
            pctl_us(&durs, 0.99),
            durs.last().map_or(0.0, |&ns| ns as f64 / 1000.0),
        );
    }

    // Queue delay vs batch size: does coalescing harder (bigger batches)
    // cost admission latency? One row per observed batch size.
    let mut by_batch: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for t in &traces {
        let engine = t.spans.iter().find(|s| s.name == "engine");
        let queue = t.spans.iter().find(|s| s.name == "queue");
        if let (Some(engine), Some(queue)) = (engine, queue) {
            if let Some(size) = engine
                .attrs
                .iter()
                .find(|(k, _)| k == "batch_size")
                .and_then(|(_, v)| v.parse().ok())
            {
                by_batch.entry(size).or_default().push(queue.dur_ns);
            }
        }
    }
    if !by_batch.is_empty() {
        let _ = writeln!(out, "\nqueue delay by batch size:");
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>14} {:>14}",
            "batch_size", "count", "queue_p50_us", "queue_p90_us"
        );
        for (size, mut durs) in by_batch {
            durs.sort_unstable();
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>14.1} {:>14.1}",
                size,
                durs.len(),
                pctl_us(&durs, 0.50),
                pctl_us(&durs, 0.90),
            );
        }
    }

    // Critical path: per stage, how often it was the single largest
    // stage of its request, and its share of all traced wall time.
    let total_ns: u64 = traces.iter().map(|t| t.total_ns).sum();
    let _ = writeln!(out, "\ncritical path:");
    let _ = writeln!(out, "{:<8} {:>10} {:>12}", "stage", "dominant", "time_share");
    for &stage in STAGES {
        let dominant = traces
            .iter()
            .filter(|t| {
                t.children(0).max_by_key(|(_, s)| s.dur_ns).is_some_and(|(_, s)| s.name == stage)
            })
            .count();
        let stage_ns: u64 = traces
            .iter()
            .flat_map(|t| t.children(0).filter(|(_, s)| s.name == stage))
            .map(|(_, s)| s.dur_ns)
            .sum();
        let share = if total_ns == 0 { 0.0 } else { 100.0 * stage_ns as f64 / total_ns as f64 };
        let _ = writeln!(out, "{:<8} {:>10} {:>11.1}%", stage, dominant, share);
    }
    Ok(out)
}

/// `trace slowest`: the N slowest requests, each as a full span tree.
fn cmd_slowest(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input", "n"])?;
    let (path, mut traces) = load_traces(&args)?;
    let n = args.get("n", 5usize)?.max(1);
    traces.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.id.cmp(&b.id)));
    let mut out =
        format!("# trace slowest: {path} (top {} of {})\n", n.min(traces.len()), traces.len());
    for t in traces.iter().take(n) {
        let attrs: Vec<String> = t.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(
            out,
            "trace={} total={:.1}us {}",
            t.id,
            t.total_ns as f64 / 1000.0,
            attrs.join(" ")
        );
        // Depth via the parent chain; parents always precede children.
        let mut depth = vec![0usize; t.spans.len()];
        for (i, span) in t.spans.iter().enumerate() {
            if span.parent >= 0 {
                depth[i] = depth[span.parent as usize] + 1;
            }
            let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                out,
                "{}{} [{:.1}us +{:.1}us] {}",
                "  ".repeat(depth[i] + 1),
                span.name,
                span.start_ns as f64 / 1000.0,
                span.dur_ns as f64 / 1000.0,
                attrs.join(" ")
            );
        }
    }
    Ok(out)
}

/// `trace folded`: aggregated folded stacks for flamegraph tooling.
fn cmd_folded(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input"])?;
    let (_, traces) = load_traces(&args)?;
    // Sum self time per path across all traces (flamegraph tools accept
    // duplicate lines, but one aggregated line per path diffs cleaner).
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    let mut lines = String::new();
    for t in &traces {
        lines.clear();
        t.folded_into(&mut lines);
        for line in lines.lines() {
            let Some((path, value)) = line.rsplit_once(' ') else { continue };
            let value: u64 = value.parse().unwrap_or(0);
            *agg.entry(path.to_string()).or_insert(0) += value;
        }
    }
    let mut out = String::new();
    for (p, ns) in agg {
        let _ = writeln!(out, "{p} {ns}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_obs::{TraceSpan, NO_PARENT};
    use ssr_serve::render_trace;

    fn sample(id: u64, total: u64, batch: usize) -> Trace {
        Trace {
            id,
            total_ns: total,
            attrs: vec![("codec".into(), "ssb".into()), ("cached".into(), "false".into())],
            spans: vec![
                TraceSpan::new("request", NO_PARENT, 0, total),
                TraceSpan::new("decode", 0, 0, total / 10),
                TraceSpan::new("cache", 0, total / 10, total / 10),
                TraceSpan::new("queue", 0, total / 5, total / 10).attr("depth", 2),
                TraceSpan::new("engine", 0, total * 3 / 10, total / 2).attr("batch_size", batch),
                TraceSpan::new("shard-0", 4, total * 3 / 10, total / 4),
                TraceSpan::new("merge", 0, total * 8 / 10, total / 10),
                TraceSpan::new("encode", 0, total * 9 / 10, total / 10),
            ],
        }
    }

    fn write_jsonl(traces: &[Trace]) -> std::path::PathBuf {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "ssr-trace-cmd-{}-{}.jsonl",
            std::process::id(),
            traces.first().map_or(0, |t| t.id)
        ));
        let text: String = traces.iter().map(|t| render_trace(t).render() + "\n").collect();
        std::fs::write(&path, text).unwrap();
        path
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn summarize_reports_stages_batches_and_critical_path() {
        let path =
            write_jsonl(&[sample(0, 10_000, 4), sample(8, 50_000, 4), sample(16, 20_000, 2)]);
        let out =
            cmd_trace(&toks(&format!("summarize --input {} --min 3", path.display()))).unwrap();
        assert!(out.contains("3 trace(s), all valid"), "{out}");
        assert!(out.contains("engine"), "{out}");
        assert!(out.contains("queue delay by batch size"), "{out}");
        assert!(out.contains("critical path"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn summarize_gates_on_min_and_invariants() {
        let path = write_jsonl(&[sample(1, 10_000, 1)]);
        let err =
            cmd_trace(&toks(&format!("summarize --input {} --min 5", path.display()))).unwrap_err();
        assert!(err.0.contains("expected at least 5"), "{err}");
        std::fs::remove_file(path).ok();

        let mut bad = sample(2, 10_000, 1);
        bad.spans.retain(|s| s.name != "engine" && s.parent != 4);
        let path = write_jsonl(&[bad]);
        let err = cmd_trace(&toks(&format!("summarize --input {}", path.display()))).unwrap_err();
        assert!(err.0.contains("missing `engine` stage"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn slowest_orders_by_total_and_prints_trees() {
        let path = write_jsonl(&[sample(3, 10_000, 1), sample(4, 90_000, 1)]);
        let out = cmd_trace(&toks(&format!("slowest --input {} --n 1", path.display()))).unwrap();
        assert!(out.contains("trace=4 total=90.0us"), "{out}");
        assert!(!out.contains("trace=3"), "{out}");
        assert!(out.contains("shard-0"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn folded_aggregates_self_time_across_traces() {
        let path = write_jsonl(&[sample(5, 10_000, 1), sample(6, 10_000, 1)]);
        let out = cmd_trace(&toks(&format!("folded --input {}", path.display()))).unwrap();
        // Two traces, each shard-0 has 2500ns self time.
        assert!(out.contains("request;engine;shard-0 5000"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_lines_fail_with_line_numbers() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ssr-trace-cmd-bad-{}.jsonl", std::process::id()));
        std::fs::write(&path, "not json\n").unwrap();
        let err = cmd_trace(&toks(&format!("summarize --input {}", path.display()))).unwrap_err();
        assert!(err.0.contains(":1:"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
