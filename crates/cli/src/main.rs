//! `simstar` binary entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", ssr_cli::commands::USAGE);
        std::process::exit(2);
    };
    match ssr_cli::commands::run(command, rest) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
