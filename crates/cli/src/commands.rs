//! The `simstar` subcommands.

use crate::args::{ArgError, Args};
use simrank_star::{
    exponential, geometric, AllPairsEngine, AllPairsOptions, QueryEngine, QueryEngineOptions,
    SimStarParams,
};
use ssr_baselines::{prank, rwr, simrank};
use ssr_compress::{compress, CompressOptions};
use ssr_graph::components::{strongly_connected_components, weakly_connected_components};
use ssr_graph::stats::graph_stats;
use ssr_graph::{io as gio, DiGraph};
use std::io::Write;

/// Top-level usage text.
pub const USAGE: &str = "\
simstar — SimRank* similarity toolkit (reproduction of Yu et al., VLDB 2013)

USAGE:
  simstar <command> [--flag value ...]

COMMANDS:
  compute   all-pairs similarities from an edge list
            --input FILE [--algo gsr|esr|memo-gsr|memo-esr|sr|prank|rwr]
            [--c 0.6] [--k 5] [--threshold 0] [--format text|json]
            [--output FILE] [--load-full false]
  allpairs  block-parallel all-pairs SimRank* through the AllPairsEngine
            --input FILE [--top-k K] [--subset ID,ID,...] [--compress false]
            [--threads 0] [--blocks 0] [--c 0.6] [--k 5] [--threshold 0]
            [--format text|json] [--output FILE] [--load-full false]
            [--memory false]
            --subset computes only those rows (partial pairs); --top-k
            streams per-row rankings without materializing the matrix —
            both run straight off a v2 .ssg store (bounded memory); the
            full matrix and --compress need the in-memory CSR (--load-full
            true on v2 input); --compress runs the memoized (edge-
            concentrated) kernel and reports its compression stats;
            --format json emits machine-readable output (rankings share
            the serve protocol's matches shape)
  query     single-source SimRank* through the amortized QueryEngine
            --input FILE (--node ID | --nodes ID,ID,... | --batch N)
            [--top-k 10] [--c 0.6] [--k 5] [--seed 0] [--compress false]
            [--format text|json] [--load-full false] [--memory false]
            [--deterministic false]
            --nodes/--batch run the batched lane kernel; --batch samples N
            in-degree-stratified queries (the paper's test-query protocol);
            a v2 .ssg input streams adjacency off the mmap-backed store
            (no full CSR in memory) unless --load-full true; --memory
            prints a resident-bytes accounting line; --deterministic makes
            results batch-composition-independent bit for bit;
            --format json emits the serve protocol's machine-readable
            result shape
  serve     concurrent query server (newline-JSON and binary ssb/1 over
            TCP; see the README's Serving layer section for both wire
            formats)
            --input FILE [--host 127.0.0.1] [--port 0] [--announce FILE]
            [--c 0.6] [--k 5] [--compress false] [--window-us 500]
            [--max-batch 64] [--workers 1] [--queue 1024] [--cache 4096]
            [--cache-shards 8] [--shards 1] [--max-conns 256]
            [--trace-sample 0] [--trace-out FILE]
            port 0 binds an ephemeral port; --announce writes the bound
            address to FILE once listening; --shards N partitions the
            graph by weakly-connected component across N engine workers
            (scatter-gather answers stay bit-identical to --shards 1);
            --trace-sample N records a span trace for 1 in N requests
            (0 = off, retunable via the admin config op), fetched through
            the trace op or streamed as JSONL with --trace-out
  bench-serve  closed-loop load generator against a running serve instance
            (--addr HOST:PORT | --announce FILE [--wait-announce 10])
            [--clients 16] [--requests 125] [--top-k 10]
            [--window-us 800] [--pipeline 8] [--idle-conns 1024]
            [--shards 1] [--name serve] [--out BENCH_serve.json]
            [--smoke false] [--shutdown false]
            runs the serial / batched / cached phases, the json/ssb
            protocol comparison (serial + pipelined), and a connection-
            scaling phase holding --idle-conns open sockets, then writes
            the ssr-bench/serve/v1 JSON; --announce waits for a serve
            --announce file instead of a fixed address; --shards N (against
            a serve --shards N instance) runs only the shard-axis pair,
            emitting serial_shardsN / batched_shardsN modes
  serve-probe  dump a server's deterministic top-k answers for diffing
            (--addr HOST:PORT | --announce FILE [--wait-announce 10])
            [--top-k 10] [--count n] [--metrics false] [--healthz false]
            one query\\tnode\\tscore line per match with shortest-round-
            trip scores: diff two probes to prove bit-identical serving
            (CI diffs --shards 1 against --shards N this way);
            --healthz is a readiness check: one ping, prints the epoch
            and shard count, nonzero exit on any failure
  trace     offline analyzer for trace JSONL exports (serve --trace-out
            files, one document per line)
            trace summarize --input FILE [--min 1]
                         validate every trace, then per-stage latency
                         percentiles, queue delay by batch size, and the
                         critical-path breakdown; fails if fewer than
                         --min traces parse
            trace slowest --input FILE [--n 5]
                         the N slowest requests as full span trees
            trace folded --input FILE
                         flamegraph folded-stack lines (self time)
  stats     graph statistics + compression summary
            --input FILE [--format text|json] [--memory false]
            [--load-full false]
            --memory adds engine + graph resident-bytes accounting
  audit     zero-similarity census (Fig. 6(d) style)
            --input FILE [--samples 2000] [--radius 6] [--seed 0]
            [--format text|json] [--load-full false]
  generate  synthetic graphs
            --kind er|rmat|web|citation|coauthor --nodes N [--edges M]
            [--seed 0] [--output FILE] [--store FILE.ssg]
            --store writes the binary graph store directly (no text
            round-trip); both flags may be given together
  store     binary graph store (.ssg) tools — every command above also
            accepts .ssg files for --input (format sniffed by content);
            v2 stores stream through query/allpairs row paths, while
            full-CSR paths (compute, stats, audit, the all-pairs full
            matrix, --compress, --batch) refuse them unless --load-full
            true decodes the whole graph
            store build  --input FILE --output FILE.ssg
                         [--dataset NAME] [--divisor N] [--build-params S]
                         [--store-version 2]
            store perm   --input FILE --output FILE.ssg --order bfs|degree
                         (cache-locality relabeling; ids map back on read)
            store info   --input FILE.ssg
            store verify --input FILE.ssg   (checksums + full decode)
";

/// Runs one subcommand; returns the text to print.
pub fn run(command: &str, rest: &[String]) -> Result<String, ArgError> {
    match command {
        "compute" => cmd_compute(rest),
        "allpairs" => cmd_allpairs(rest),
        "query" => cmd_query(rest),
        "serve" => crate::serve_cmd::cmd_serve(rest),
        "bench-serve" => crate::serve_cmd::cmd_bench_serve(rest),
        "serve-probe" => crate::serve_cmd::cmd_serve_probe(rest),
        "stats" => cmd_stats(rest),
        "audit" => cmd_audit(rest),
        "generate" => cmd_generate(rest),
        "store" => crate::store_cmd::cmd_store(rest),
        "trace" => crate::trace_cmd::cmd_trace(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(ArgError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

/// How a command renders its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutputFormat {
    /// Human-readable text (the default).
    Text,
    /// Machine-readable JSON.
    Json,
}

/// Resolves `--format {text,json}`, honoring the deprecated `--json BOOL`
/// alias (hidden from usage; warns on stderr so scripts comparing stdout
/// keep working).
pub(crate) fn output_format(args: &Args) -> Result<OutputFormat, ArgError> {
    if args.has("format") {
        if args.has("json") {
            return Err(ArgError(
                "`--json` is a deprecated alias of `--format`; give only `--format`".into(),
            ));
        }
        return Ok(match args.one_of("format", &["text", "json"])? {
            "json" => OutputFormat::Json,
            _ => OutputFormat::Text,
        });
    }
    if args.has("json") {
        eprintln!("warning: `--json BOOL` is deprecated; use `--format {{text,json}}`");
        return Ok(if args.get("json", false)? { OutputFormat::Json } else { OutputFormat::Text });
    }
    Ok(OutputFormat::Text)
}

pub(crate) fn load_graph(args: &Args) -> Result<DiGraph, ArgError> {
    let path = args.req("input")?;
    // Content-sniffing loader: `.ssg` binary stores and text edge lists
    // are interchangeable for every `--input` in the tool.
    ssr_store::load_graph_auto(path).map_err(|e| ArgError(format!("reading `{path}`: {e}")))
}

/// Whether `--input` names a random-access-capable (v2) `.ssg` store.
fn input_is_v2_store(args: &Args) -> Result<bool, ArgError> {
    let path = args.req("input")?;
    if !ssr_store::is_store_file(path).map_err(|e| ArgError(format!("reading `{path}`: {e}")))? {
        return Ok(false);
    }
    let r = ssr_store::StoreReader::open(path)
        .map_err(|e| ArgError(format!("opening `{path}`: {e}")))?;
    Ok(r.version() >= ssr_store::FORMAT_VERSION)
}

/// The graph behind `--input`, either fully decoded or served straight
/// off the compressed store bytes.
pub(crate) enum GraphSource {
    /// In-memory CSR (text edge lists, v1 stores, or `--load-full true`).
    Memory(DiGraph),
    /// mmap-backed random access into a v2 store; only O(n) state plus a
    /// bounded row cache stays resident.
    Access(std::sync::Arc<ssr_store::RandomAccessStore>),
}

impl GraphSource {
    pub(crate) fn node_count(&self) -> usize {
        match self {
            GraphSource::Memory(g) => g.node_count(),
            GraphSource::Access(s) => ssr_graph::NeighborAccess::node_count(&**s),
        }
    }

    fn query_engine(&self, params: SimStarParams, opts: QueryEngineOptions) -> QueryEngine {
        match self {
            GraphSource::Memory(g) => QueryEngine::with_options(g, params, opts),
            GraphSource::Access(s) => QueryEngine::with_access(s.clone(), params, opts),
        }
    }

    fn all_pairs_engine(&self, params: SimStarParams, opts: AllPairsOptions) -> AllPairsEngine {
        match self {
            GraphSource::Memory(g) => AllPairsEngine::with_options(g, params, opts),
            GraphSource::Access(s) => AllPairsEngine::with_access(s.clone(), params, opts),
        }
    }

    /// Resident graph/backing bytes: the CSR footprint, or the store's
    /// O(n) state plus currently cached rows.
    fn graph_bytes(&self) -> usize {
        match self {
            GraphSource::Memory(g) => g.estimated_bytes(),
            GraphSource::Access(s) => s.resident_bytes(),
        }
    }
}

/// Loads `--input` for commands that can compute over the random-access
/// store: a v2 `.ssg` opens mmap-backed unless `--load-full true` asks
/// for the in-memory CSR; text edge lists and v1 stores always decode
/// fully (they have no random-access index).
pub(crate) fn load_graph_source(args: &Args) -> Result<GraphSource, ArgError> {
    if !args.get("load-full", false)? && input_is_v2_store(args)? {
        let path = args.req("input")?;
        let store = ssr_store::RandomAccessStore::open(path)
            .map_err(|e| ArgError(format!("opening `{path}`: {e}")))?;
        return Ok(GraphSource::Access(std::sync::Arc::new(store)));
    }
    load_graph(args).map(GraphSource::Memory)
}

/// Loads `--input` for code paths that genuinely require the full CSR.
/// A v2 store is refused unless `--load-full true` makes the memory cost
/// explicit — silently decoding a random-access store would defeat the
/// memory budget the format exists for.
pub(crate) fn load_graph_full_required(args: &Args, what: &str) -> Result<DiGraph, ArgError> {
    if !args.get("load-full", false)? && input_is_v2_store(args)? {
        return Err(ArgError(format!(
            "`{}` is a random-access (v2) store, but {what} needs the full in-memory CSR; \
             pass `--load-full true` to decode it anyway",
            args.req("input")?
        )));
    }
    load_graph(args)
}

/// The `# memory:` accounting line (engine kernels + graph backing +
/// store row cache), printed when `--memory true` is given.
fn memory_line(engine_bytes: usize, source: &GraphSource) -> String {
    let (backing, cache) = match source {
        GraphSource::Memory(_) => ("csr", 0),
        GraphSource::Access(s) => ("store", s.cache_budget_bytes()),
    };
    format!(
        "# memory: backing={backing} engine_bytes={engine_bytes} graph_bytes={} \
         cache_budget_bytes={cache}\n",
        source.graph_bytes()
    )
}

fn cmd_compute(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(
        rest,
        &["input", "algo", "c", "k", "threshold", "format", "output", "load-full"],
    )?;
    let format = output_format(&args)?;
    let g = load_graph_full_required(&args, "compute (all-pairs matrices)")?;
    let c = args.get("c", 0.6)?;
    let k = args.get("k", 5usize)?;
    let threshold = args.get("threshold", 0.0)?;
    if !(0.0..1.0).contains(&c) || c == 0.0 {
        return Err(ArgError(format!("--c must be in (0,1), got {c}")));
    }
    let algo = args.opt("algo", "gsr");
    let params = SimStarParams { c, iterations: k };
    let mut sim = match algo {
        "gsr" => geometric::iterate(&g, &params),
        "esr" => exponential::closed_form(&g, &params),
        "memo-gsr" => geometric::iterate_memo(&g, &params, &CompressOptions::default()),
        "memo-esr" => exponential::closed_form_memo(&g, &params, &CompressOptions::default()),
        "sr" => simrank::simrank(&g, c, k),
        "prank" => prank::prank_default(&g, c, k),
        "rwr" => rwr::rwr_matrix(&g, c, k),
        other => {
            return Err(ArgError(format!(
                "unknown --algo `{other}` (gsr|esr|memo-gsr|memo-esr|sr|prank|rwr)"
            )))
        }
    };
    let kept = if threshold > 0.0 { sim.clip_below(threshold) } else { 0 };
    let n = sim.node_count();
    if format == OutputFormat::Json {
        let mut entries: Vec<(u32, u32, f64)> = Vec::new();
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                if a != b && sim.score(a, b) > 0.0 {
                    entries.push((a, b, sim.score(a, b)));
                }
            }
        }
        return write_or_return(
            &args,
            entries_json("simstar/compute/v1", &params, threshold, &entries),
        );
    }
    let mut out = String::new();
    out.push_str(&format!("# simstar compute: algo={algo} c={c} k={k} n={n}\n"));
    if threshold > 0.0 {
        out.push_str(&format!("# threshold={threshold} kept={kept}\n"));
    }
    out.push_str("# a b score (off-diagonal, score > 0)\n");
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            if a != b && sim.score(a, b) > 0.0 {
                out.push_str(&format!("{a}\t{b}\t{:.6e}\n", sim.score(a, b)));
            }
        }
    }
    write_or_return(&args, out)
}

fn cmd_allpairs(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(
        rest,
        &[
            "input",
            "c",
            "k",
            "top-k",
            "subset",
            "compress",
            "threads",
            "blocks",
            "threshold",
            "format",
            "json",
            "output",
            "load-full",
            "memory",
        ],
    )?;
    let format = output_format(&args)?;
    let params = SimStarParams { c: args.get("c", 0.6)?, iterations: args.get("k", 5usize)? };
    if !(0.0..1.0).contains(&params.c) || params.c == 0.0 {
        return Err(ArgError(format!("--c must be in (0,1), got {}", params.c)));
    }
    let threshold = args.get("threshold", 0.0)?;
    let top = args.get("top-k", 0usize)?;
    if top > 0 && args.has("threshold") {
        return Err(ArgError(
            "--threshold does not apply to --top-k output (rankings are score-ordered already)"
                .into(),
        ));
    }
    let opts = AllPairsOptions {
        compress: args.get("compress", false)?,
        threads: args.get("threads", 0usize)?,
        block_rows: args.get("blocks", 0usize)?,
        ..Default::default()
    };
    let subset: Option<Vec<u32>> = if args.has("subset") {
        Some(
            args.req("subset")?
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse::<u32>()
                        .map_err(|_| ArgError(format!("--subset: cannot parse `{t}`")))
                })
                .collect::<Result<_, _>>()?,
        )
    } else {
        None
    };
    // Only the full-matrix path (neither --top-k nor --subset) requires
    // the whole CSR; rankings and partial rows stream off a v2 store.
    let source = if top == 0 && subset.is_none() {
        GraphSource::Memory(load_graph_full_required(&args, "the all-pairs full matrix")?)
    } else {
        load_graph_source(&args)?
    };
    if opts.compress && matches!(source, GraphSource::Access(_)) {
        return Err(ArgError(
            "--compress needs the in-memory graph (edge concentration reads the whole \
             adjacency); pass `--load-full true`"
                .into(),
        ));
    }
    let n = source.node_count();
    if let Some(rows) = &subset {
        if rows.is_empty() {
            return Err(ArgError("--subset needs at least one node id".into()));
        }
        for &q in rows {
            if q as usize >= n {
                return Err(ArgError(format!(
                    "subset node {q} out of range (graph has {n} nodes)"
                )));
            }
        }
    }
    let engine = source.all_pairs_engine(params, opts);
    let mut out = format!(
        "# simstar allpairs: c={} k={} n={} threads={}\n",
        params.c,
        params.iterations,
        n,
        if engine.options().threads == 0 {
            ssr_linalg::available_threads()
        } else {
            engine.options().threads
        },
    );
    if args.get("memory", false)? {
        out.push_str(&memory_line(engine.resident_bytes(), &source));
    }
    if let Some(r) = engine.compression() {
        out.push_str(&format!(
            "# compression: m={} m~={} ratio={:.1}% concentrators={} bytes={}\n",
            r.original_edges,
            r.compressed_edges,
            100.0 * r.ratio,
            r.concentrators,
            r.estimated_bytes,
        ));
    }
    let json_mode = format == OutputFormat::Json;
    if top > 0 {
        // Streaming top-k: ranked rows, never materializing the matrix.
        let rows: Vec<u32> = match &subset {
            Some(r) => r.clone(),
            None => (0..n as u32).collect(),
        };
        let ranked = engine.top_k(&rows, top);
        if json_mode {
            return write_or_return(
                &args,
                query_results_json("simstar/allpairs/v1", &params, top, &rows, &ranked),
            );
        }
        out.push_str(&format!("# top-{top} per row (query\tnode\tscore)\n"));
        for (q, matches) in rows.iter().zip(&ranked) {
            for (v, s) in matches {
                out.push_str(&format!("{q}\t{v}\t{s:.6}\n"));
            }
        }
    } else if let Some(rows) = &subset {
        // Partial pairs: the requested rows of the matrix.
        let m = engine.rows(rows);
        let mut entries: Vec<(u32, u32, f64)> = Vec::new();
        for (i, &a) in rows.iter().enumerate() {
            for b in 0..n as u32 {
                let s = m.get(i, b as usize);
                // Same boundary semantics as the full-matrix path (which
                // clips below the threshold, keeping equality): emit
                // scores >= threshold, and only positive ones.
                if a != b && s > 0.0 && (threshold <= 0.0 || s >= threshold) {
                    entries.push((a, b, s));
                }
            }
        }
        if json_mode {
            return write_or_return(
                &args,
                entries_json("simstar/allpairs/v1", &params, threshold, &entries),
            );
        }
        out.push_str("# partial pairs (a b score, off-diagonal)\n");
        for (a, b, s) in entries {
            out.push_str(&format!("{a}\t{b}\t{s:.6e}\n"));
        }
    } else {
        let mut sim = engine.full();
        let kept = if threshold > 0.0 { sim.clip_below(threshold) } else { 0 };
        let n = sim.node_count();
        if json_mode {
            let mut entries: Vec<(u32, u32, f64)> = Vec::new();
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    if a != b && sim.score(a, b) > 0.0 {
                        entries.push((a, b, sim.score(a, b)));
                    }
                }
            }
            return write_or_return(
                &args,
                entries_json("simstar/allpairs/v1", &params, threshold, &entries),
            );
        }
        if threshold > 0.0 {
            out.push_str(&format!("# threshold={threshold} kept={kept}\n"));
        }
        out.push_str("# a b score (off-diagonal, score > 0)\n");
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                if a != b && sim.score(a, b) > 0.0 {
                    out.push_str(&format!("{a}\t{b}\t{:.6e}\n", sim.score(a, b)));
                }
            }
        }
    }
    write_or_return(&args, out)
}

/// Machine-readable matrix output: `{"entries": [[a, b, score], ...]}`.
fn entries_json(
    schema: &str,
    params: &SimStarParams,
    threshold: f64,
    entries: &[(u32, u32, f64)],
) -> String {
    use ssr_serve::json::Json;
    Json::Obj(vec![
        ("schema".into(), Json::Str(schema.into())),
        ("c".into(), Json::Num(params.c)),
        ("k".into(), Json::Num(params.iterations as f64)),
        ("threshold".into(), Json::Num(threshold)),
        (
            "entries".into(),
            Json::Arr(
                entries
                    .iter()
                    .map(|&(a, b, s)| {
                        Json::Arr(vec![Json::Num(a as f64), Json::Num(b as f64), Json::Num(s)])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
        + "\n"
}

fn cmd_query(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(
        rest,
        &[
            "input",
            "node",
            "nodes",
            "batch",
            "top",
            "top-k",
            "c",
            "k",
            "seed",
            "compress",
            "format",
            "json",
            "load-full",
            "memory",
            "deterministic",
        ],
    )?;
    let format = output_format(&args)?;
    let source = load_graph_source(&args)?;
    let modes = ["node", "nodes", "batch"].iter().filter(|m| args.has(m)).count();
    if modes != 1 {
        return Err(ArgError(
            "exactly one of `--node ID`, `--nodes ID,ID,...`, `--batch N` is required".into(),
        ));
    }
    // `--top` is kept as an alias of `--top-k`.
    let top =
        if args.has("top-k") { args.get("top-k", 10usize)? } else { args.get("top", 10usize)? };
    let params = SimStarParams { c: args.get("c", 0.6)?, iterations: args.get("k", 5usize)? };
    if !(0.0..1.0).contains(&params.c) || params.c == 0.0 {
        return Err(ArgError(format!("--c must be in (0,1), got {}", params.c)));
    }
    let queries: Vec<u32> = if args.has("node") {
        vec![args.get("node", 0u32)?]
    } else if args.has("nodes") {
        args.req("nodes")?
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<u32>()
                    .map_err(|_| ArgError(format!("--nodes: cannot parse `{t}`")))
            })
            .collect::<Result<_, _>>()?
    } else {
        let n = args.get("batch", 64usize)?;
        if n == 0 {
            return Err(ArgError("--batch must be at least 1".into()));
        }
        let GraphSource::Memory(g) = &source else {
            return Err(ArgError(
                "--batch samples in-degree-stratified queries over the full graph; pass \
                 `--load-full true` (or name queries with `--nodes`)"
                    .into(),
            ));
        };
        let seed = args.get("seed", 0u64)?;
        let mut sampled = ssr_eval::queries::select_queries(g, 5, n.div_ceil(5), seed);
        sampled.truncate(n);
        sampled
    };
    for &q in &queries {
        if q as usize >= source.node_count() {
            return Err(ArgError(format!(
                "query node {q} out of range (graph has {} nodes)",
                source.node_count()
            )));
        }
    }
    let opts = QueryEngineOptions {
        compress: args.get("compress", false)?,
        deterministic: args.get("deterministic", false)?,
        ..Default::default()
    };
    if opts.compress && matches!(source, GraphSource::Access(_)) {
        return Err(ArgError(
            "--compress needs the in-memory graph (edge concentration reads the whole \
             adjacency); pass `--load-full true`"
                .into(),
        ));
    }
    let engine = source.query_engine(params, opts);
    let memory = if args.get("memory", false)? {
        memory_line(engine.resident_bytes(), &source)
    } else {
        String::new()
    };
    // `--node` keeps the scalar sweep; list modes run the batched lanes.
    let ranked: Vec<Vec<(u32, f64)>> = if args.has("node") {
        vec![engine.top_k(queries[0], top)]
    } else {
        engine.top_k_batch(&queries, top)
    };
    if format == OutputFormat::Json {
        return Ok(query_results_json("simstar/query/v1", &params, top, &queries, &ranked));
    }
    // The output format follows the flag, not the list arity: `--nodes 5`
    // must emit the same 3-column batched format as `--nodes 5,6`.
    if args.has("node") {
        let node = queries[0];
        let mut out = format!("# top-{top} SimRank* matches for node {node}\n{memory}");
        for (v, s) in &ranked[0] {
            out.push_str(&format!("{v}\t{s:.6}\n"));
        }
        Ok(out)
    } else {
        let mut out = format!(
            "# batched top-{top} SimRank* matches for {} queries (query\tnode\tscore)\n{memory}",
            queries.len()
        );
        for (q, rows) in queries.iter().zip(&ranked) {
            for (v, s) in rows {
                out.push_str(&format!("{q}\t{v}\t{s:.6}\n"));
            }
        }
        Ok(out)
    }
}

/// Machine-readable ranking output: the serve protocol's `matches` shape
/// (`[[node, score], ...]` with shortest-round-trip scores), one result
/// object per query. Shared by `query --json` and `allpairs --json
/// --top-k`.
fn query_results_json(
    schema: &str,
    params: &SimStarParams,
    top: usize,
    queries: &[u32],
    ranked: &[Vec<(u32, f64)>],
) -> String {
    use ssr_serve::json::Json;
    let results = Json::Arr(
        queries
            .iter()
            .zip(ranked)
            .map(|(&q, rows)| {
                Json::Obj(vec![
                    ("node".into(), Json::Num(q as f64)),
                    ("matches".into(), ssr_serve::codec::jsonl::matches_json(rows)),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("schema".into(), Json::Str(schema.into())),
        ("c".into(), Json::Num(params.c)),
        ("k".into(), Json::Num(params.iterations as f64)),
        ("top_k".into(), Json::Num(top as f64)),
        ("results".into(), results),
    ])
    .render()
        + "\n"
}

fn cmd_stats(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input", "format", "memory", "load-full"])?;
    let format = output_format(&args)?;
    let g = load_graph_full_required(&args, "stats (degree/component census)")?;
    let s = graph_stats(&g);
    let wcc = weakly_connected_components(&g);
    let scc = strongly_connected_components(&g);
    let cg = compress(&g, &CompressOptions::default());
    // `--memory true`: measured resident bytes of the graph, a default
    // query engine over it, and the store row-cache budget a v2 store
    // would hold — so memory claims in BENCH files trace to a command.
    let memory = if args.get("memory", false)? {
        let engine = QueryEngine::new(&g, SimStarParams::default());
        Some((engine.resident_bytes(), g.estimated_bytes()))
    } else {
        None
    };
    if format == OutputFormat::Json {
        use ssr_serve::json::Json;
        let n = |v: f64| Json::Num(v);
        let mut pairs = vec![
            ("schema".into(), Json::Str("simstar/stats/v1".into())),
            ("nodes".into(), n(s.nodes as f64)),
            ("edges".into(), n(s.edges as f64)),
            ("density".into(), n(s.density)),
            ("max_in_degree".into(), n(s.max_in_degree as f64)),
            ("max_out_degree".into(), n(s.max_out_degree as f64)),
            ("sources".into(), n(s.sources as f64)),
            ("sinks".into(), n(s.sinks as f64)),
            ("isolated".into(), n(s.isolated as f64)),
            ("wcc".into(), n(wcc.count as f64)),
            ("scc".into(), n(scc.count as f64)),
            ("disconnected_pair_fraction".into(), n(wcc.disconnected_pair_fraction())),
            ("compressed_edges".into(), n(cg.compressed_edge_count() as f64)),
            ("compression_ratio".into(), n(cg.compression_ratio())),
            ("concentrators".into(), n(cg.concentrator_count() as f64)),
        ];
        if let Some((engine_bytes, graph_bytes)) = memory {
            pairs.push(("engine_bytes".into(), n(engine_bytes as f64)));
            pairs.push(("graph_bytes".into(), n(graph_bytes as f64)));
        }
        return Ok(Json::Obj(pairs).render() + "\n");
    }
    let mut out = format!(
        "nodes                 {}\n\
         edges                 {}\n\
         density |E|/|V|       {:.2}\n\
         max in/out degree     {} / {}\n\
         sources/sinks/isolated {} / {} / {}\n\
         weakly connected comp {}\n\
         strongly connected comp {} ({})\n\
         disconnected pairs    {:.1}%\n\
         compressed edges m~   {} (ratio {:.1}%, {} concentrators)\n",
        s.nodes,
        s.edges,
        s.density,
        s.max_in_degree,
        s.max_out_degree,
        s.sources,
        s.sinks,
        s.isolated,
        wcc.count,
        scc.count,
        if scc.count == s.nodes { "DAG-like: all singletons" } else { "has cycles" },
        100.0 * wcc.disconnected_pair_fraction(),
        cg.compressed_edge_count(),
        100.0 * cg.compression_ratio(),
        cg.concentrator_count(),
    );
    if let Some((engine_bytes, graph_bytes)) = memory {
        out.push_str(&format!(
            "memory                engine {engine_bytes} B, graph {graph_bytes} B (CSR)\n"
        ));
    }
    Ok(out)
}

fn cmd_audit(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input", "samples", "radius", "seed", "format", "load-full"])?;
    let format = output_format(&args)?;
    let g = load_graph_full_required(&args, "audit (random-walk probing)")?;
    if g.node_count() < 2 {
        return Err(ArgError("graph needs at least 2 nodes to audit".into()));
    }
    let samples = args.get("samples", 2000usize)?;
    let radius = args.get("radius", 6usize)?;
    let seed = args.get("seed", 0u64)?;
    let sr = ssr_eval::zero_sim::simrank_census(&g, samples, radius, seed);
    let rw = ssr_eval::zero_sim::rwr_census(&g, samples, radius, seed);
    if format == OutputFormat::Json {
        use ssr_serve::json::Json;
        let census = |c: &ssr_eval::zero_sim::ZeroSimCensus| {
            Json::Obj(vec![
                ("completely_dissimilar".into(), Json::Num(c.completely_dissimilar)),
                ("partially_missing".into(), Json::Num(c.partially_missing)),
                ("affected".into(), Json::Num(c.any_issue())),
            ])
        };
        return Ok(Json::Obj(vec![
            ("schema".into(), Json::Str("simstar/audit/v1".into())),
            ("samples".into(), Json::Num(samples as f64)),
            ("radius".into(), Json::Num(radius as f64)),
            ("simrank".into(), census(&sr)),
            ("rwr".into(), census(&rw)),
        ])
        .render()
            + "\n");
    }
    Ok(format!(
        "zero-similarity audit ({samples} sampled pairs, probe radius {radius})\n\
         SimRank : {:5.1}% completely dissimilar, {:5.1}% partially missing => {:5.1}% affected\n\
         RWR     : {:5.1}% completely dissimilar, {:5.1}% partially missing => {:5.1}% affected\n",
        100.0 * sr.completely_dissimilar,
        100.0 * sr.partially_missing,
        100.0 * sr.any_issue(),
        100.0 * rw.completely_dissimilar,
        100.0 * rw.partially_missing,
        100.0 * rw.any_issue(),
    ))
}

fn cmd_generate(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["kind", "nodes", "edges", "seed", "output", "store"])?;
    let kind = args.req("kind")?;
    let nodes = args.get("nodes", 1000usize)?;
    let edges = args.get("edges", nodes * 8)?;
    let seed = args.get("seed", 0u64)?;
    let g = match kind {
        "er" => ssr_gen::random::erdos_renyi_gnm(nodes, edges, seed),
        "rmat" | "web" => {
            let scale = usize::BITS - nodes.saturating_sub(1).leading_zeros();
            if kind == "rmat" {
                ssr_gen::random::rmat(scale, edges, ssr_gen::random::RmatParams::default(), seed)
            } else {
                ssr_gen::random::webgraph(scale, edges, 0.5, seed)
            }
        }
        "citation" => ssr_gen::citation::citation_graph(
            ssr_gen::citation::CitationParams {
                nodes,
                avg_out_degree: edges as f64 / nodes as f64,
                ..Default::default()
            },
            seed,
        ),
        "coauthor" => {
            ssr_gen::community::community_graph(
                ssr_gen::community::CommunityParams {
                    nodes,
                    papers: (edges / 8).max(nodes / 2),
                    communities: (nodes / 40).max(4),
                    ..Default::default()
                },
                seed,
            )
            .graph
        }
        other => {
            return Err(ArgError(format!(
                "unknown --kind `{other}` (er|rmat|web|citation|coauthor)"
            )))
        }
    };
    if args.has("store") {
        // Straight to the binary store: no text round-trip, and the build
        // provenance rides along as metadata.
        let path = args.req("store")?;
        let bytes = ssr_store::StoreWriter::new(&g)
            .meta(ssr_store::meta_keys::BUILD, format!("kind={kind} seed={seed}"))
            .write_file(path)
            .map_err(|e| ArgError(format!("writing store `{path}`: {e}")))?;
        let mut out = format!(
            "wrote store {path}: n={} m={} ({bytes} bytes)\n",
            g.node_count(),
            g.edge_count()
        );
        if args.has("output") {
            out.push_str(&write_or_return(&args, gio::to_edge_list_string(&g))?);
        }
        return Ok(out);
    }
    let text = gio::to_edge_list_string(&g);
    write_or_return(&args, text)
}

fn write_or_return(args: &Args, content: String) -> Result<String, ArgError> {
    match args.opt("output", "") {
        "" => Ok(content),
        path => {
            let mut f = std::fs::File::create(path)
                .map_err(|e| ArgError(format!("creating `{path}`: {e}")))?;
            f.write_all(content.as_bytes())
                .map_err(|e| ArgError(format!("writing `{path}`: {e}")))?;
            Ok(format!("wrote {} bytes to {path}\n", content.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp_graph() -> String {
        let dir = std::env::temp_dir().join("simstar_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.txt");
        let g = ssr_gen::fixtures::figure1_graph();
        std::fs::write(&path, gio::to_edge_list_string(&g)).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        assert!(run("help", &[]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run("frobnicate", &[]).is_err());
    }

    #[test]
    fn stats_on_generated_graph() {
        let p = tmp_graph();
        let out = run("stats", &toks(&format!("--input {p}"))).unwrap();
        assert!(out.contains("nodes"));
        assert!(out.contains("compressed edges"));
    }

    #[test]
    fn compute_all_algos() {
        let p = tmp_graph();
        for algo in ["gsr", "esr", "memo-gsr", "memo-esr", "sr", "prank", "rwr"] {
            let out = run("compute", &toks(&format!("--input {p} --algo {algo} --k 3"))).unwrap();
            assert!(out.contains("simstar compute"), "{algo}");
        }
    }

    #[test]
    fn compute_rejects_bad_c() {
        let p = tmp_graph();
        assert!(run("compute", &toks(&format!("--input {p} --c 1.5"))).is_err());
    }

    #[test]
    fn allpairs_full_matches_compute_gsr() {
        let p = tmp_graph();
        let full = run("allpairs", &toks(&format!("--input {p} --k 4"))).unwrap();
        let compute = run("compute", &toks(&format!("--input {p} --algo gsr --k 4"))).unwrap();
        let strip = |s: &str| {
            s.lines().filter(|l| !l.starts_with('#')).map(String::from).collect::<Vec<_>>()
        };
        assert_eq!(strip(&full), strip(&compute));
    }

    #[test]
    fn allpairs_subset_rows_only() {
        let p = tmp_graph();
        let out = run("allpairs", &toks(&format!("--input {p} --subset 8,3 --k 4"))).unwrap();
        assert!(out.contains("partial pairs"));
        for l in out.lines().filter(|l| !l.starts_with('#')) {
            let a = l.split('\t').next().unwrap();
            assert!(a == "8" || a == "3", "unexpected row {l}");
        }
    }

    #[test]
    fn allpairs_top_k_streams_rankings() {
        let p = tmp_graph();
        let out = run("allpairs", &toks(&format!("--input {p} --top-k 3 --threads 2 --blocks 8")))
            .unwrap();
        let rows = out.lines().filter(|l| !l.starts_with('#')).count();
        // Figure-1 graph has 11 nodes; ≤ 3 matches per node.
        assert!(rows > 11 && rows <= 33, "{rows}");
        // Per-row rankings agree with the single-source query path.
        let q = run("query", &toks(&format!("--input {p} --node 8 --top-k 3"))).unwrap();
        let want: Vec<String> =
            q.lines().filter(|l| !l.starts_with('#')).map(|l| format!("8\t{l}")).collect();
        let got: Vec<&str> = out.lines().filter(|l| l.starts_with("8\t")).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn allpairs_compress_reports_stats() {
        let p = tmp_graph();
        let plain = run("allpairs", &toks(&format!("--input {p} --k 4"))).unwrap();
        assert!(!plain.contains("# compression"));
        let memo = run("allpairs", &toks(&format!("--input {p} --k 4 --compress true"))).unwrap();
        assert!(memo.contains("# compression"), "{memo}");
        assert!(memo.contains("ratio="));
        assert!(memo.contains("bytes="));
        // Same scores either way.
        let strip = |s: &str| {
            s.lines().filter(|l| !l.starts_with('#')).map(String::from).collect::<Vec<_>>()
        };
        assert_eq!(strip(&plain), strip(&memo));
    }

    #[test]
    fn allpairs_threshold_consistent_between_full_and_subset() {
        let p = tmp_graph();
        // Same rows survive the same threshold through both paths.
        let full = run("allpairs", &toks(&format!("--input {p} --k 4 --threshold 1e-3"))).unwrap();
        let part =
            run("allpairs", &toks(&format!("--input {p} --k 4 --threshold 1e-3 --subset 8")))
                .unwrap();
        let rows_of = |s: &str| {
            s.lines().filter(|l| l.starts_with("8\t")).map(String::from).collect::<Vec<_>>()
        };
        assert_eq!(rows_of(&full), rows_of(&part));
        // Threshold is meaningless for rankings and is rejected.
        assert!(run("allpairs", &toks(&format!("--input {p} --top-k 3 --threshold 0.5"))).is_err());
    }

    #[test]
    fn allpairs_rejects_bad_subset() {
        let p = tmp_graph();
        assert!(run("allpairs", &toks(&format!("--input {p} --subset 999"))).is_err());
        assert!(run("allpairs", &toks(&format!("--input {p} --subset x"))).is_err());
    }

    #[test]
    fn query_returns_ranked_rows() {
        let p = tmp_graph();
        let out = run("query", &toks(&format!("--input {p} --node 8 --top 3"))).unwrap();
        let rows: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn query_requires_node() {
        let p = tmp_graph();
        assert!(run("query", &toks(&format!("--input {p}"))).is_err());
    }

    #[test]
    fn query_mode_flags_are_exclusive() {
        let p = tmp_graph();
        assert!(run("query", &toks(&format!("--input {p} --node 1 --batch 4"))).is_err());
    }

    #[test]
    fn query_top_k_flag_matches_top_alias() {
        let p = tmp_graph();
        let a = run("query", &toks(&format!("--input {p} --node 8 --top 3"))).unwrap();
        let b = run("query", &toks(&format!("--input {p} --node 8 --top-k 3"))).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn query_single_nodes_entry_keeps_batched_format() {
        let p = tmp_graph();
        let out = run("query", &toks(&format!("--input {p} --nodes 8 --top-k 2"))).unwrap();
        assert!(out.contains("batched top-2"));
        assert!(out.lines().skip(1).all(|l| l.starts_with("8\t")));
    }

    #[test]
    fn query_nodes_runs_batched_and_matches_single() {
        let p = tmp_graph();
        let batched = run("query", &toks(&format!("--input {p} --nodes 8,3 --top-k 2"))).unwrap();
        let rows: Vec<&str> = batched.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(rows.len(), 4);
        // Batched rows for node 8 equal the single-query ranking.
        let single = run("query", &toks(&format!("--input {p} --node 8 --top-k 2"))).unwrap();
        let single_rows: Vec<&str> = single.lines().filter(|l| !l.starts_with('#')).collect();
        for (b, s) in rows.iter().take(2).zip(&single_rows) {
            assert_eq!(b.strip_prefix("8\t").unwrap(), *s);
        }
    }

    #[test]
    fn query_batch_samples_stratified_queries() {
        let p = tmp_graph();
        let out =
            run("query", &toks(&format!("--input {p} --batch 4 --top-k 3 --seed 1"))).unwrap();
        assert!(out.contains("batched top-3"));
        let rows = out.lines().filter(|l| !l.starts_with('#')).count();
        assert!(rows > 0 && rows <= 12, "{rows}");
    }

    #[test]
    fn query_compressed_engine_matches_plain() {
        let p = tmp_graph();
        let plain = run("query", &toks(&format!("--input {p} --nodes 1,2 --top-k 3"))).unwrap();
        let memo =
            run("query", &toks(&format!("--input {p} --nodes 1,2 --top-k 3 --compress true")))
                .unwrap();
        assert_eq!(plain, memo);
    }

    #[test]
    fn query_bounds_checked() {
        let p = tmp_graph();
        assert!(run("query", &toks(&format!("--input {p} --node 999"))).is_err());
    }

    #[test]
    fn query_json_parses_and_matches_text_output() {
        use ssr_serve::json::{parse_json, Json};
        let p = tmp_graph();
        let text = run("query", &toks(&format!("--input {p} --nodes 8,3 --top-k 2"))).unwrap();
        let json = run("query", &toks(&format!("--input {p} --nodes 8,3 --top-k 2 --format json")))
            .unwrap();
        let doc = parse_json(json.trim()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("simstar/query/v1"));
        let results = doc.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        // Every (query, node, score) row of the text output appears in the
        // JSON with at least the text format's precision.
        let mut text_rows = text.lines().filter(|l| !l.starts_with('#'));
        for r in results {
            let q = r.get("node").and_then(Json::as_num).unwrap() as u32;
            for m in r.get("matches").and_then(Json::as_arr).unwrap() {
                let pair = m.as_arr().unwrap();
                let (v, s) = (pair[0].as_num().unwrap() as u32, pair[1].as_num().unwrap());
                assert_eq!(text_rows.next().unwrap(), format!("{q}\t{v}\t{s:.6}"));
            }
        }
        assert!(text_rows.next().is_none());
    }

    #[test]
    fn query_json_single_node_keeps_shape() {
        use ssr_serve::json::{parse_json, Json};
        let p = tmp_graph();
        let json =
            run("query", &toks(&format!("--input {p} --node 8 --top-k 3 --format json"))).unwrap();
        let doc = parse_json(json.trim()).unwrap();
        let results = doc.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("node").and_then(Json::as_num), Some(8.0));
        assert_eq!(results[0].get("matches").and_then(Json::as_arr).unwrap().len(), 3);
    }

    #[test]
    fn allpairs_json_topk_and_entries_modes() {
        use ssr_serve::json::{parse_json, Json};
        let p = tmp_graph();
        let ranked =
            run("allpairs", &toks(&format!("--input {p} --top-k 2 --format json"))).unwrap();
        let doc = parse_json(ranked.trim()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("simstar/allpairs/v1"));
        assert_eq!(doc.get("results").and_then(Json::as_arr).unwrap().len(), 11);
        let matrix = run(
            "allpairs",
            &toks(&format!("--input {p} --subset 8 --threshold 1e-3 --format json")),
        )
        .unwrap();
        let doc = parse_json(matrix.trim()).unwrap();
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        assert!(!entries.is_empty());
        // Entries agree with the text output rows.
        let text =
            run("allpairs", &toks(&format!("--input {p} --subset 8 --threshold 1e-3"))).unwrap();
        assert_eq!(entries.len(), text.lines().filter(|l| !l.starts_with('#')).count());
        for e in entries {
            let t = e.as_arr().unwrap();
            assert_eq!(t[0].as_num(), Some(8.0));
            assert!(t[2].as_num().unwrap() >= 1e-3);
        }
    }

    #[test]
    fn serve_round_trip_via_announce_file() {
        use ssr_serve::client::{Client, Reply};
        let p = tmp_graph();
        let dir = std::env::temp_dir().join("simstar_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let announce = dir.join(format!("addr_{}.txt", std::process::id()));
        std::fs::remove_file(&announce).ok();
        let announce_str = announce.to_string_lossy().into_owned();
        let serve_args =
            toks(&format!("--input {p} --port 0 --announce {announce_str} --window-us 200"));
        let server = std::thread::spawn(move || run("serve", &serve_args));
        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(s) = std::fs::read_to_string(&announce) {
                    if s.trim().contains(':') {
                        break s.trim().to_string();
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                waited += 1;
                assert!(waited < 500, "server never announced");
            }
        };
        let mut client = Client::connect(&addr).unwrap();
        let Reply::Ok(reply) = client.query(8, 3).unwrap() else { panic!("query failed") };
        assert_eq!(reply.epoch, 0);
        assert_eq!(reply.matches.len(), 3);
        // The ranked ids agree with the offline query command.
        let text = run("query", &toks(&format!("--input {p} --node 8 --top-k 3"))).unwrap();
        let offline: Vec<u32> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split('\t').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(reply.matches.iter().map(|&(v, _)| v).collect::<Vec<_>>(), offline);
        client.shutdown().unwrap();
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("stopped"));
        std::fs::remove_file(&announce).ok();
    }

    #[test]
    fn bench_serve_runs_phases_and_writes_json() {
        use ssr_serve::json::{parse_json, Json};
        let p = tmp_graph();
        let dir = std::env::temp_dir().join("simstar_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let announce = dir.join(format!("bench_addr_{}.txt", std::process::id()));
        std::fs::remove_file(&announce).ok();
        let out_path = dir.join(format!("bench_serve_{}.json", std::process::id()));
        let announce_str = announce.to_string_lossy().into_owned();
        let serve_args = toks(&format!("--input {p} --port 0 --announce {announce_str}"));
        let server = std::thread::spawn(move || run("serve", &serve_args));
        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(s) = std::fs::read_to_string(&announce) {
                    if s.trim().contains(':') {
                        break s.trim().to_string();
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                waited += 1;
                assert!(waited < 500, "server never announced");
            }
        };
        let out = run(
            "bench-serve",
            &toks(&format!(
                "--addr {addr} --clients 3 --requests 4 --top-k 3 --window-us 300 \
                 --idle-conns 8 --name fig1 --out {} --shutdown true",
                out_path.to_string_lossy()
            )),
        )
        .unwrap();
        assert!(out.contains("speedup batched vs serial"), "{out}");
        assert!(out.contains("server asked to shut down"));
        let doc = parse_json(std::fs::read_to_string(&out_path).unwrap().trim()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("ssr-bench/serve/v1"));
        let ds = &doc.get("datasets").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(ds.get("name").and_then(Json::as_str), Some("fig1"));
        let modes = ds.get("modes").unwrap();
        for m in ["serial", "batched", "cached"] {
            let mode = modes.get(m).unwrap();
            assert_eq!(mode.get("requests").and_then(Json::as_num), Some(12.0), "{m}");
            assert!(mode.get("p50_us").and_then(Json::as_num).unwrap() > 0.0, "{m}");
        }
        for m in ["json_serial", "ssb_serial", "ssb_pipelined", "conns_1k"] {
            assert!(modes.get(m).is_some(), "{m} mode missing from the report");
        }
        let pipelined = modes.get("ssb_pipelined").unwrap();
        assert_eq!(pipelined.get("protocol").and_then(Json::as_str), Some("ssb/1"));
        assert!(pipelined.get("pipeline").and_then(Json::as_num).unwrap() > 1.0);
        assert!(
            modes.get("conns_1k").unwrap().get("connections").and_then(Json::as_num).unwrap()
                >= 8.0
        );
        // The cached phase's hot pool (min(64, n) = all 11 nodes here)
        // repeats nodes across 12 requests ⇒ hits are guaranteed.
        assert!(
            modes.get("cached").unwrap().get("cache_hit_rate").and_then(Json::as_num).unwrap()
                > 0.0
        );
        server.join().unwrap().unwrap();
        std::fs::remove_file(&announce).ok();
        std::fs::remove_file(&out_path).ok();
    }

    /// One pass over the whole sharded CLI surface: `serve --shards`,
    /// `serve-probe` through `--announce`/`--wait-announce`, probe-diff
    /// bit identity against an unsharded server, and the `bench-serve
    /// --shards` shard-axis modes.
    #[test]
    fn sharded_serve_probe_and_bench_shard_axis() {
        use ssr_serve::json::{parse_json, Json};
        let p = tmp_graph();
        let dir = std::env::temp_dir().join("simstar_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let mut announces = Vec::new();
        let mut servers = Vec::new();
        for shards in [1usize, 2] {
            let announce = dir.join(format!("shard_addr_{pid}_{shards}.txt"));
            std::fs::remove_file(&announce).ok();
            let serve_args = toks(&format!(
                "--input {p} --port 0 --announce {} --shards {shards} --window-us 200",
                announce.to_string_lossy()
            ));
            servers.push(std::thread::spawn(move || run("serve", &serve_args)));
            announces.push(announce);
        }
        // Probe both through their announce files (no shell wait loops).
        let probes: Vec<String> = announces
            .iter()
            .map(|a| {
                run(
                    "serve-probe",
                    &toks(&format!(
                        "--announce {} --wait-announce 10 --top-k 4",
                        a.to_string_lossy()
                    )),
                )
                .unwrap()
            })
            .collect();
        let body = |s: &str| {
            s.lines().filter(|l| !l.starts_with('#')).map(String::from).collect::<Vec<_>>()
        };
        assert!(!body(&probes[0]).is_empty());
        // The acceptance property, over the wire: shortest-round-trip
        // score lines diff empty between shards=1 and shards=2.
        assert_eq!(body(&probes[0]), body(&probes[1]), "sharded probe differs from unsharded");
        // bench-serve --shards runs only the shard-axis pair.
        let out_path = dir.join(format!("bench_shards_{pid}.json"));
        let out = run(
            "bench-serve",
            &toks(&format!(
                "--announce {} --clients 2 --requests 3 --top-k 3 --window-us 200 \
                 --shards 2 --name fig1 --out {}",
                announces[1].to_string_lossy(),
                out_path.to_string_lossy()
            )),
        )
        .unwrap();
        assert!(out.contains("serial_shards2"), "{out}");
        let doc = parse_json(std::fs::read_to_string(&out_path).unwrap().trim()).unwrap();
        let ds = &doc.get("datasets").and_then(Json::as_arr).unwrap()[0];
        let modes = ds.get("modes").unwrap();
        for m in ["serial_shards2", "batched_shards2"] {
            let mode = modes.get(m).unwrap_or_else(|| panic!("{m} mode missing"));
            assert_eq!(mode.get("shards").and_then(Json::as_num), Some(2.0), "{m}");
            assert!(mode.get("p50_us").and_then(Json::as_num).unwrap() > 0.0, "{m}");
        }
        assert!(modes.get("serial").is_none(), "unsharded modes must not appear in a --shards run");
        for a in &announces {
            let addr = std::fs::read_to_string(a).unwrap().trim().to_string();
            let mut c = ssr_serve::client::Client::connect(&addr).unwrap();
            c.shutdown().unwrap();
        }
        for s in servers {
            s.join().unwrap().unwrap();
        }
        for a in &announces {
            std::fs::remove_file(a).ok();
        }
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn audit_reports_percentages() {
        let p = tmp_graph();
        let out = run("audit", &toks(&format!("--input {p} --samples 200"))).unwrap();
        assert!(out.contains("SimRank"));
        assert!(out.contains("RWR"));
    }

    #[test]
    fn generate_round_trips() {
        for kind in ["er", "rmat", "web", "citation", "coauthor"] {
            let out =
                run("generate", &toks(&format!("--kind {kind} --nodes 64 --edges 256 --seed 1")))
                    .unwrap();
            let g = ssr_graph::io::graph_from_edge_list(&out).unwrap();
            assert!(g.edge_count() > 0, "{kind}");
        }
    }

    #[test]
    fn generate_to_file() {
        let dir = std::env::temp_dir().join("simstar_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.txt");
        let out = run(
            "generate",
            &toks(&format!("--kind er --nodes 32 --edges 64 --output {}", path.to_string_lossy())),
        )
        .unwrap();
        assert!(out.contains("wrote"));
        assert!(path.exists());
    }

    #[test]
    fn generate_store_emits_loadable_ssg() {
        let dir = std::env::temp_dir().join("simstar_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let ssg = dir.join(format!("gen_{pid}.ssg"));
        let txt = dir.join(format!("gen_{pid}.txt"));
        let out = run(
            "generate",
            &toks(&format!(
                "--kind er --nodes 32 --edges 64 --seed 3 --store {} --output {}",
                ssg.to_string_lossy(),
                txt.to_string_lossy()
            )),
        )
        .unwrap();
        assert!(out.contains("wrote store"), "{out}");
        // The store and the text output describe the identical graph, and
        // build provenance rides along as metadata.
        let from_store = ssr_store::load_graph_auto(&ssg).unwrap();
        let from_text = ssr_store::load_graph_auto(&txt).unwrap();
        assert_eq!(from_store, from_text);
        let r = ssr_store::StoreReader::open(&ssg).unwrap();
        assert_eq!(r.meta(ssr_store::meta_keys::BUILD), Some("kind=er seed=3"));
        // Store-only mode works too (no text dumped to stdout).
        let only = run(
            "generate",
            &toks(&format!(
                "--kind er --nodes 32 --edges 64 --seed 3 --store {}",
                ssg.to_string_lossy()
            )),
        )
        .unwrap();
        assert!(only.starts_with("wrote store"));
        std::fs::remove_file(&ssg).ok();
        std::fs::remove_file(&txt).ok();
    }

    #[test]
    fn missing_input_file_errors() {
        assert!(run("stats", &toks("--input /nonexistent/graph.txt")).is_err());
    }

    /// Builds a v2 `.ssg` store of the Figure 1 graph and returns its path.
    fn tmp_store(tag: &str) -> String {
        let text = tmp_graph();
        let dir = std::env::temp_dir().join("simstar_cli_test");
        let ssg = dir.join(format!("{}_{tag}.ssg", std::process::id()));
        let ssg = ssg.to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {text} --output {ssg}"))).unwrap();
        ssg
    }

    #[test]
    fn v2_store_streams_query_but_refuses_full_csr_paths() {
        let text = tmp_graph();
        let ssg = tmp_store("stream");
        // Row-streaming paths run off the store and answer identically.
        let q_text = run("query", &toks(&format!("--input {text} --node 8 --top-k 3"))).unwrap();
        let q_ssg = run("query", &toks(&format!("--input {ssg} --node 8 --top-k 3"))).unwrap();
        assert_eq!(q_text, q_ssg);
        let a_text = run("allpairs", &toks(&format!("--input {text} --top-k 2"))).unwrap();
        let a_ssg = run("allpairs", &toks(&format!("--input {ssg} --top-k 2"))).unwrap();
        assert_eq!(a_text, a_ssg);
        // Paths that genuinely need the full CSR refuse the v2 store...
        for (cmd, args) in [
            ("compute", format!("--input {ssg} --k 3")),
            ("stats", format!("--input {ssg}")),
            ("audit", format!("--input {ssg} --samples 10 --radius 2")),
            ("allpairs", format!("--input {ssg} --k 3")),
        ] {
            let err = run(cmd, &toks(&args)).unwrap_err();
            assert!(err.0.contains("random-access (v2) store"), "{cmd}: {err}");
            assert!(err.0.contains("--load-full"), "{cmd}: {err}");
            // ...and --load-full true decodes the graph and proceeds.
            let out = run(cmd, &toks(&format!("{args} --load-full true"))).unwrap();
            let reference = run(cmd, &toks(&args.replacen(&ssg, &text, 1))).unwrap();
            assert_eq!(out, reference, "{cmd}");
        }
        // Batched sampling and edge concentration also need the CSR.
        let err = run("query", &toks(&format!("--input {ssg} --batch 3"))).unwrap_err();
        assert!(err.0.contains("--load-full"), "{err}");
        let err =
            run("query", &toks(&format!("--input {ssg} --node 8 --compress true"))).unwrap_err();
        assert!(err.0.contains("--compress needs the in-memory graph"), "{err}");
        let err = run("allpairs", &toks(&format!("--input {ssg} --top-k 2 --compress true")))
            .unwrap_err();
        assert!(err.0.contains("--compress needs the in-memory graph"), "{err}");
        std::fs::remove_file(&ssg).ok();
    }

    #[test]
    fn memory_flag_reports_backing() {
        let text = tmp_graph();
        let ssg = tmp_store("mem");
        let on_store =
            run("query", &toks(&format!("--input {ssg} --node 8 --memory true"))).unwrap();
        assert!(on_store.contains("# memory: backing=store"), "{on_store}");
        assert!(on_store.contains("cache_budget_bytes="), "{on_store}");
        let on_text =
            run("query", &toks(&format!("--input {text} --node 8 --memory true"))).unwrap();
        assert!(on_text.contains("# memory: backing=csr"), "{on_text}");
        let ap = run("allpairs", &toks(&format!("--input {ssg} --top-k 2 --memory true"))).unwrap();
        assert!(ap.contains("# memory: backing=store"), "{ap}");
        let st = run("stats", &toks(&format!("--input {text} --memory true"))).unwrap();
        assert!(st.contains("memory"), "{st}");
        assert!(st.contains("engine"), "{st}");
        let sj =
            run("stats", &toks(&format!("--input {text} --memory true --format json"))).unwrap();
        assert!(sj.contains("engine_bytes"), "{sj}");
        assert!(sj.contains("graph_bytes"), "{sj}");
        std::fs::remove_file(&ssg).ok();
    }

    #[test]
    fn deterministic_query_identical_across_backings() {
        let text = tmp_graph();
        let ssg = tmp_store("det");
        let dir = std::env::temp_dir().join("simstar_cli_test");
        let perm = dir.join(format!("{}_det_perm.ssg", std::process::id()));
        let perm = perm.to_string_lossy().into_owned();
        run("store", &toks(&format!("perm --input {ssg} --output {perm} --order bfs"))).unwrap();
        let args = "--nodes 2,5,8 --top-k 4 --deterministic true --format json";
        let from_text = run("query", &toks(&format!("--input {text} {args}"))).unwrap();
        let from_store = run("query", &toks(&format!("--input {ssg} {args}"))).unwrap();
        let from_perm = run("query", &toks(&format!("--input {perm} {args}"))).unwrap();
        // In-memory CSR, mmap store, and permuted store answer bit for bit alike.
        assert_eq!(from_text, from_store);
        assert_eq!(from_text, from_perm);
        std::fs::remove_file(&ssg).ok();
        std::fs::remove_file(&perm).ok();
    }
}
