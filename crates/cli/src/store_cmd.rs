//! The `simstar store` subcommand family: build, inspect, and verify
//! `.ssg` binary graph stores.

use crate::args::{ArgError, Args};
use ssr_store::{meta_keys, StoreReader, StoreWriter};
use std::fmt::Write as _;

/// Dispatches `simstar store <action>`.
pub fn cmd_store(rest: &[String]) -> Result<String, ArgError> {
    let Some((action, rest)) = rest.split_first() else {
        return Err(ArgError(
            "store needs an action: `store build|info|verify --flag value ...`".into(),
        ));
    };
    match action.as_str() {
        "build" => cmd_build(rest),
        "info" => cmd_info(rest),
        "verify" => cmd_verify(rest),
        other => Err(ArgError(format!("unknown store action `{other}` (build|info|verify)"))),
    }
}

/// `store build`: text edge list (or another store) in, `.ssg` out.
fn cmd_build(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input", "output", "dataset", "divisor", "build-params"])?;
    let input = args.req("input")?;
    let output = args.req("output")?;
    // The auto loader accepts either format, so `store build` also
    // re-encodes an existing store (e.g. after a format-version bump).
    // A store input's metadata is carried through — provenance must
    // survive a re-encode — with command-line flags overriding per key.
    let mut carried: Vec<(String, String)> = Vec::new();
    let g = if ssr_store::is_store_file(input)
        .map_err(|e| ArgError(format!("reading `{input}`: {e}")))?
    {
        let mut reader = ssr_store::StoreReader::open(input)
            .map_err(|e| ArgError(format!("opening `{input}`: {e}")))?;
        carried = reader.metadata().to_vec();
        reader.load_full().map_err(|e| ArgError(format!("reading `{input}`: {e}")))?
    } else {
        ssr_store::load_graph_auto(input)
            .map_err(|e| ArgError(format!("reading `{input}`: {e}")))?
    };
    for (flag, key) in [
        ("dataset", meta_keys::DATASET),
        ("divisor", meta_keys::DIVISOR),
        ("build-params", meta_keys::BUILD),
    ] {
        if args.has(flag) {
            carried.retain(|(k, _)| k != key);
            carried.push((key.to_string(), args.req(flag)?.to_string()));
        }
    }
    let mut w = StoreWriter::new(&g);
    for (k, v) in carried {
        w = w.meta(k, v);
    }
    let bytes = w.write_file(output).map_err(|e| ArgError(format!("writing `{output}`: {e}")))?;
    Ok(format!("wrote {output}: n={} m={} ({bytes} bytes)\n", g.node_count(), g.edge_count()))
}

/// `store info`: header, section table, metadata, size accounting.
fn cmd_info(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input"])?;
    let input = args.req("input")?;
    let r = StoreReader::open(input).map_err(|e| ArgError(format!("opening `{input}`: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "store                 {input}");
    let _ = writeln!(out, "format version        {}", r.version());
    let _ = writeln!(out, "nodes                 {}", r.node_count());
    let _ = writeln!(out, "edges                 {}", r.edge_count());
    let _ = writeln!(out, "file bytes            {}", r.file_len());
    let _ = writeln!(out, "adjacency bits/id     {:.2} (32 in memory)", r.bits_per_edge());
    let _ = writeln!(out, "sections              {}", r.sections().len());
    for s in r.sections() {
        let name = match s.id {
            ssr_store::format::SECTION_OUT => "out-adjacency",
            ssr_store::format::SECTION_IN => "in-adjacency",
            ssr_store::format::SECTION_META => "metadata",
            _ => "unknown",
        };
        let _ = writeln!(
            out,
            "  section {:<2} {:<14} offset={:<10} len={:<10} checksum={:016x}",
            s.id, name, s.offset, s.len, s.checksum
        );
    }
    if !r.metadata().is_empty() {
        let _ = writeln!(out, "metadata");
        for (k, v) in r.metadata() {
            let _ = writeln!(out, "  {k} = {v}");
        }
    }
    Ok(out)
}

/// `store verify`: checksums + full structural decode.
fn cmd_verify(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input"])?;
    let input = args.req("input")?;
    let mut r =
        StoreReader::open(input).map_err(|e| ArgError(format!("opening `{input}`: {e}")))?;
    let report = r.verify().map_err(|e| ArgError(format!("verify failed for `{input}`: {e}")))?;
    Ok(format!(
        "ok: {} sections, {} payload bytes, n={} m={}, {:.2} bits/id\n",
        report.sections, report.payload_bytes, report.nodes, report.edges, report.bits_per_edge
    ))
}

#[cfg(test)]
mod tests {
    use crate::commands::run;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("simstar_store_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tmp_text_graph(name: &str) -> String {
        let path = tmp_dir().join(format!("{}_{name}.txt", std::process::id()));
        let g = ssr_gen::fixtures::figure1_graph();
        std::fs::write(&path, ssr_graph::io::to_edge_list_string(&g)).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn build_info_verify_round_trip() {
        let text = tmp_text_graph("roundtrip");
        let ssg = tmp_dir().join(format!("{}_rt.ssg", std::process::id()));
        let ssg = ssg.to_string_lossy().into_owned();
        let built = run(
            "store",
            &toks(&format!("build --input {text} --output {ssg} --dataset fig1 --divisor 1")),
        )
        .unwrap();
        assert!(built.contains("n=11"), "{built}");
        let info = run("store", &toks(&format!("info --input {ssg}"))).unwrap();
        assert!(info.contains("nodes                 11"), "{info}");
        assert!(info.contains("out-adjacency"));
        assert!(info.contains("dataset = fig1"));
        assert!(info.contains("divisor = 1"));
        let verify = run("store", &toks(&format!("verify --input {ssg}"))).unwrap();
        assert!(verify.starts_with("ok:"), "{verify}");
        // Re-encoding a store carries its metadata through; flags
        // override individual keys.
        let ssg2 = tmp_dir().join(format!("{}_rt2.ssg", std::process::id()));
        let ssg2 = ssg2.to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {ssg} --output {ssg2} --divisor 2"))).unwrap();
        let info2 = run("store", &toks(&format!("info --input {ssg2}"))).unwrap();
        assert!(info2.contains("dataset = fig1"), "provenance must survive re-encode: {info2}");
        assert!(info2.contains("divisor = 2"), "{info2}");
    }

    #[test]
    fn store_input_transparent_to_query_and_stats() {
        let text = tmp_text_graph("transparent");
        let ssg = tmp_dir().join(format!("{}_tp.ssg", std::process::id()));
        let ssg = ssg.to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {text} --output {ssg}"))).unwrap();
        // Same answers whether the input is text or store.
        let q_text = run("query", &toks(&format!("--input {text} --node 8 --top-k 3"))).unwrap();
        let q_ssg = run("query", &toks(&format!("--input {ssg} --node 8 --top-k 3"))).unwrap();
        assert_eq!(q_text, q_ssg);
        let s_text = run("stats", &toks(&format!("--input {text}"))).unwrap();
        let s_ssg = run("stats", &toks(&format!("--input {ssg}"))).unwrap();
        assert_eq!(s_text, s_ssg);
        let a_text = run("allpairs", &toks(&format!("--input {text} --top-k 2"))).unwrap();
        let a_ssg = run("allpairs", &toks(&format!("--input {ssg} --top-k 2"))).unwrap();
        assert_eq!(a_text, a_ssg);
    }

    #[test]
    fn verify_rejects_corruption() {
        let text = tmp_text_graph("corrupt");
        let ssg = tmp_dir().join(format!("{}_c.ssg", std::process::id()));
        let ssg_str = ssg.to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {text} --output {ssg_str}"))).unwrap();
        let mut bytes = std::fs::read(&ssg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&ssg, &bytes).unwrap();
        let err = run("store", &toks(&format!("verify --input {ssg_str}"))).unwrap_err();
        assert!(err.0.contains("checksum"), "{err}");
    }

    #[test]
    fn bad_action_and_missing_flags_error() {
        assert!(run("store", &[]).is_err());
        assert!(run("store", &toks("frob --input x")).is_err());
        assert!(run("store", &toks("build --input only.txt")).is_err());
        assert!(run("store", &toks("info --input /nonexistent.ssg")).is_err());
    }

    #[test]
    fn text_input_to_info_is_a_typed_error() {
        let text = tmp_text_graph("notastore");
        let err = run("store", &toks(&format!("info --input {text}"))).unwrap_err();
        assert!(err.0.contains("magic"), "{err}");
    }
}
