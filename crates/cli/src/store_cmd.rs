//! The `simstar store` subcommand family: build, inspect, and verify
//! `.ssg` binary graph stores.

use crate::args::{ArgError, Args};
use ssr_store::{meta_keys, StoreReader, StoreWriter};
use std::fmt::Write as _;

/// Dispatches `simstar store <action>`.
pub fn cmd_store(rest: &[String]) -> Result<String, ArgError> {
    let Some((action, rest)) = rest.split_first() else {
        return Err(ArgError(
            "store needs an action: `store build|perm|info|verify --flag value ...`".into(),
        ));
    };
    match action.as_str() {
        "build" => cmd_build(rest),
        "perm" => cmd_perm(rest),
        "info" => cmd_info(rest),
        "verify" => cmd_verify(rest),
        other => Err(ArgError(format!("unknown store action `{other}` (build|perm|info|verify)"))),
    }
}

/// Loads a graph for re-encoding, carrying a store input's metadata
/// through (provenance must survive a re-encode). Derived keys the writer
/// regenerates (`v1.adjacency_bytes`, `perm.order`) are dropped so a
/// re-encode never carries stale accounting.
fn load_for_encode(input: &str) -> Result<(ssr_graph::DiGraph, Vec<(String, String)>), ArgError> {
    let mut carried: Vec<(String, String)> = Vec::new();
    let g = if ssr_store::is_store_file(input)
        .map_err(|e| ArgError(format!("reading `{input}`: {e}")))?
    {
        let mut reader = ssr_store::StoreReader::open(input)
            .map_err(|e| ArgError(format!("opening `{input}`: {e}")))?;
        carried = reader.metadata().to_vec();
        carried.retain(|(k, _)| k != meta_keys::V1_ADJACENCY_BYTES && k != meta_keys::PERM_ORDER);
        reader.load_full().map_err(|e| ArgError(format!("reading `{input}`: {e}")))?
    } else {
        ssr_store::load_graph_auto(input)
            .map_err(|e| ArgError(format!("reading `{input}`: {e}")))?
    };
    Ok((g, carried))
}

/// `store build`: text edge list (or another store) in, `.ssg` out.
fn cmd_build(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(
        rest,
        &["input", "output", "dataset", "divisor", "build-params", "store-version"],
    )?;
    let input = args.req("input")?;
    let output = args.req("output")?;
    // The auto loader accepts either format, so `store build` also
    // re-encodes an existing store (e.g. after a format-version bump).
    // Command-line flags override carried metadata per key.
    let (g, mut carried) = load_for_encode(input)?;
    for (flag, key) in [
        ("dataset", meta_keys::DATASET),
        ("divisor", meta_keys::DIVISOR),
        ("build-params", meta_keys::BUILD),
    ] {
        if args.has(flag) {
            carried.retain(|(k, _)| k != key);
            carried.push((key.to_string(), args.req(flag)?.to_string()));
        }
    }
    let mut w = StoreWriter::new(&g).version(args.get("store-version", ssr_store::FORMAT_VERSION)?);
    for (k, v) in carried {
        w = w.meta(k, v);
    }
    let bytes = w.write_file(output).map_err(|e| ArgError(format!("writing `{output}`: {e}")))?;
    Ok(format!("wrote {output}: n={} m={} ({bytes} bytes)\n", g.node_count(), g.edge_count()))
}

/// `store perm`: re-encode with a cache-locality node relabeling (v2
/// only); the bijection is stored so readers keep presenting original
/// ids.
fn cmd_perm(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input", "output", "order"])?;
    let input = args.req("input")?;
    let output = args.req("output")?;
    let order = args.one_of("order", &["bfs", "degree"])?.to_string();
    let (g, carried) = load_for_encode(input)?;
    let perm = match order.as_str() {
        "bfs" => ssr_graph::perm::bfs_order(&g),
        _ => ssr_graph::perm::degree_order(&g),
    };
    let mut w = StoreWriter::new(&g).permutation(perm, &order);
    for (k, v) in carried {
        w = w.meta(k, v);
    }
    let bytes = w.write_file(output).map_err(|e| ArgError(format!("writing `{output}`: {e}")))?;
    let r =
        StoreReader::open(output).map_err(|e| ArgError(format!("reopening `{output}`: {e}")))?;
    Ok(format!(
        "wrote {output}: n={} m={} ({bytes} bytes, {order} order, {:.2} bits/id)\n",
        g.node_count(),
        g.edge_count(),
        r.bits_per_edge()
    ))
}

/// `store info`: header, section table, metadata, size accounting.
fn cmd_info(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input"])?;
    let input = args.req("input")?;
    let r = StoreReader::open(input).map_err(|e| ArgError(format!("opening `{input}`: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "store                 {input}");
    let _ = writeln!(out, "format version        {}", r.version());
    let _ = writeln!(out, "nodes                 {}", r.node_count());
    let _ = writeln!(out, "edges                 {}", r.edge_count());
    let _ = writeln!(out, "file bytes            {}", r.file_len());
    let _ = writeln!(out, "adjacency bits/id     {:.2} (32 in memory)", r.bits_per_edge());
    let stored_ids = 2 * r.edge_count() as u64;
    if r.offset_index_bytes() > 0 && stored_ids > 0 {
        let _ = writeln!(
            out,
            "offset index          {} bytes ({:.2} bits/id overhead)",
            r.offset_index_bytes(),
            r.offset_index_bytes() as f64 * 8.0 / stored_ids as f64
        );
    }
    if let Some(v1) = r.meta(meta_keys::V1_ADJACENCY_BYTES).and_then(|s| s.parse::<u64>().ok()) {
        let v2 = r.adjacency_bytes();
        let delta = 100.0 * (v1 as f64 - v2 as f64) / v1.max(1) as f64;
        let _ = writeln!(out, "v1 adjacency bytes    {v1} (v2 saves {delta:.1}%)");
    }
    if let Some(order) = r.meta(meta_keys::PERM_ORDER) {
        let _ = writeln!(out, "layout permutation    {order} (ids map back on read)");
    }
    let _ = writeln!(out, "sections              {}", r.sections().len());
    for s in r.sections() {
        let name = match s.id {
            ssr_store::format::SECTION_OUT => "out-adjacency",
            ssr_store::format::SECTION_IN => "in-adjacency",
            ssr_store::format::SECTION_META => "metadata",
            ssr_store::format::SECTION_OUT_OFFSETS => "out-offsets",
            ssr_store::format::SECTION_IN_OFFSETS => "in-offsets",
            ssr_store::format::SECTION_PERM => "permutation",
            _ => "unknown",
        };
        let mut line = format!(
            "  section {:<2} {:<14} offset={:<10} len={:<10} checksum={:016x}",
            s.id, name, s.offset, s.len, s.checksum
        );
        if stored_ids > 0
            && matches!(s.id, ssr_store::format::SECTION_OUT | ssr_store::format::SECTION_IN)
        {
            let _ = write!(line, " bits/id={:.2}", s.len as f64 * 8.0 / r.edge_count() as f64);
        }
        let _ = writeln!(out, "{line}");
    }
    if !r.metadata().is_empty() {
        let _ = writeln!(out, "metadata");
        for (k, v) in r.metadata() {
            let _ = writeln!(out, "  {k} = {v}");
        }
    }
    Ok(out)
}

/// `store verify`: checksums + full structural decode.
fn cmd_verify(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(rest, &["input"])?;
    let input = args.req("input")?;
    let mut r =
        StoreReader::open(input).map_err(|e| ArgError(format!("opening `{input}`: {e}")))?;
    let report = r.verify().map_err(|e| ArgError(format!("verify failed for `{input}`: {e}")))?;
    Ok(format!(
        "ok: {} sections, {} payload bytes, n={} m={}, {:.2} bits/id{}\n",
        report.sections,
        report.payload_bytes,
        report.nodes,
        report.edges,
        report.bits_per_edge,
        if report.permuted { ", permuted layout" } else { "" }
    ))
}

#[cfg(test)]
mod tests {
    use crate::commands::run;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("simstar_store_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tmp_text_graph(name: &str) -> String {
        let path = tmp_dir().join(format!("{}_{name}.txt", std::process::id()));
        let g = ssr_gen::fixtures::figure1_graph();
        std::fs::write(&path, ssr_graph::io::to_edge_list_string(&g)).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn build_info_verify_round_trip() {
        let text = tmp_text_graph("roundtrip");
        let ssg = tmp_dir().join(format!("{}_rt.ssg", std::process::id()));
        let ssg = ssg.to_string_lossy().into_owned();
        let built = run(
            "store",
            &toks(&format!("build --input {text} --output {ssg} --dataset fig1 --divisor 1")),
        )
        .unwrap();
        assert!(built.contains("n=11"), "{built}");
        let info = run("store", &toks(&format!("info --input {ssg}"))).unwrap();
        assert!(info.contains("nodes                 11"), "{info}");
        assert!(info.contains("out-adjacency"));
        assert!(info.contains("dataset = fig1"));
        assert!(info.contains("divisor = 1"));
        let verify = run("store", &toks(&format!("verify --input {ssg}"))).unwrap();
        assert!(verify.starts_with("ok:"), "{verify}");
        // Re-encoding a store carries its metadata through; flags
        // override individual keys.
        let ssg2 = tmp_dir().join(format!("{}_rt2.ssg", std::process::id()));
        let ssg2 = ssg2.to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {ssg} --output {ssg2} --divisor 2"))).unwrap();
        let info2 = run("store", &toks(&format!("info --input {ssg2}"))).unwrap();
        assert!(info2.contains("dataset = fig1"), "provenance must survive re-encode: {info2}");
        assert!(info2.contains("divisor = 2"), "{info2}");
    }

    #[test]
    fn store_input_transparent_to_query_and_stats() {
        let text = tmp_text_graph("transparent");
        let ssg = tmp_dir().join(format!("{}_tp.ssg", std::process::id()));
        let ssg = ssg.to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {text} --output {ssg}"))).unwrap();
        // Same answers whether the input is text or store.
        let q_text = run("query", &toks(&format!("--input {text} --node 8 --top-k 3"))).unwrap();
        let q_ssg = run("query", &toks(&format!("--input {ssg} --node 8 --top-k 3"))).unwrap();
        assert_eq!(q_text, q_ssg);
        // stats needs the whole CSR: a v2 store is refused unless decoded explicitly.
        let err = run("stats", &toks(&format!("--input {ssg}"))).unwrap_err();
        assert!(err.0.contains("random-access (v2) store"), "{err}");
        let s_text = run("stats", &toks(&format!("--input {text}"))).unwrap();
        let s_ssg = run("stats", &toks(&format!("--input {ssg} --load-full true"))).unwrap();
        assert_eq!(s_text, s_ssg);
        let a_text = run("allpairs", &toks(&format!("--input {text} --top-k 2"))).unwrap();
        let a_ssg = run("allpairs", &toks(&format!("--input {ssg} --top-k 2"))).unwrap();
        assert_eq!(a_text, a_ssg);
    }

    #[test]
    fn verify_rejects_corruption() {
        let text = tmp_text_graph("corrupt");
        let ssg = tmp_dir().join(format!("{}_c.ssg", std::process::id()));
        let ssg_str = ssg.to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {text} --output {ssg_str}"))).unwrap();
        let mut bytes = std::fs::read(&ssg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&ssg, &bytes).unwrap();
        let err = run("store", &toks(&format!("verify --input {ssg_str}"))).unwrap_err();
        assert!(err.0.contains("checksum"), "{err}");
    }

    #[test]
    fn perm_relabels_and_stays_transparent() {
        let text = tmp_text_graph("perm");
        let pid = std::process::id();
        let ssg = tmp_dir().join(format!("{pid}_p.ssg")).to_string_lossy().into_owned();
        let permuted = tmp_dir().join(format!("{pid}_p_bfs.ssg")).to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {text} --output {ssg} --dataset fig1")))
            .unwrap();
        let out =
            run("store", &toks(&format!("perm --input {ssg} --output {permuted} --order bfs")))
                .unwrap();
        assert!(out.contains("bfs order"), "{out}");
        // Provenance survives, the layout is recorded, verify passes.
        let info = run("store", &toks(&format!("info --input {permuted}"))).unwrap();
        assert!(info.contains("dataset = fig1"), "{info}");
        assert!(info.contains("layout permutation    bfs"), "{info}");
        assert!(info.contains("permutation"), "{info}");
        let verify = run("store", &toks(&format!("verify --input {permuted}"))).unwrap();
        assert!(verify.contains("permuted layout"), "{verify}");
        // Ids map back: the permuted store decodes to the identical graph.
        let a = ssr_store::load_graph_auto(&ssg).unwrap();
        let b = ssr_store::load_graph_auto(&permuted).unwrap();
        assert_eq!(a, b);
        // Bad order is a typed error.
        assert!(
            run("store", &toks(&format!("perm --input {ssg} --output x --order zorp"))).is_err()
        );
    }

    #[test]
    fn build_selects_store_version() {
        let text = tmp_text_graph("version");
        let pid = std::process::id();
        let v1 = tmp_dir().join(format!("{pid}_v1.ssg")).to_string_lossy().into_owned();
        let v2 = tmp_dir().join(format!("{pid}_v2.ssg")).to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {text} --output {v1} --store-version 1")))
            .unwrap();
        run("store", &toks(&format!("build --input {text} --output {v2}"))).unwrap();
        let info1 = run("store", &toks(&format!("info --input {v1}"))).unwrap();
        assert!(info1.contains("format version        1"), "{info1}");
        assert!(!info1.contains("offset index"), "{info1}");
        let info2 = run("store", &toks(&format!("info --input {v2}"))).unwrap();
        assert!(info2.contains("format version        2"), "{info2}");
        assert!(info2.contains("offset index"), "{info2}");
        assert!(info2.contains("v1 adjacency bytes"), "{info2}");
        assert!(info2.contains("out-offsets"), "{info2}");
        // Re-encoding a v2 store must not carry stale derived keys.
        let re = tmp_dir().join(format!("{pid}_re.ssg")).to_string_lossy().into_owned();
        run("store", &toks(&format!("build --input {v2} --output {re}"))).unwrap();
        let r = ssr_store::StoreReader::open(&re).unwrap();
        let v1_keys = r
            .metadata()
            .iter()
            .filter(|(k, _)| k == ssr_store::meta_keys::V1_ADJACENCY_BYTES)
            .count();
        assert_eq!(v1_keys, 1, "exactly one fresh v1-bytes record: {:?}", r.metadata());
    }

    #[test]
    fn bad_action_and_missing_flags_error() {
        assert!(run("store", &[]).is_err());
        assert!(run("store", &toks("frob --input x")).is_err());
        assert!(run("store", &toks("build --input only.txt")).is_err());
        assert!(run("store", &toks("info --input /nonexistent.ssg")).is_err());
    }

    #[test]
    fn text_input_to_info_is_a_typed_error() {
        let text = tmp_text_graph("notastore");
        let err = run("store", &toks(&format!("info --input {text}"))).unwrap_err();
        assert!(err.0.contains("magic"), "{err}");
    }
}
