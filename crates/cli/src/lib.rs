//! # ssr-cli — the `simstar` command-line tool
//!
//! A thin, dependency-free CLI over the SimRank\* suite. See
//! [`commands::USAGE`] for the command reference; the binary entry point is
//! `src/main.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod serve_cmd;
pub mod store_cmd;
pub mod trace_cmd;
