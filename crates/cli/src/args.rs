//! Minimal `--flag value` argument parser (no external CLI crates are
//! available offline). Flags may appear in any order; unknown flags are
//! errors; every flag has a typed accessor with an optional default.

use std::collections::HashMap;

/// Parsed flag map for one subcommand.
#[derive(Debug, Clone)]
pub struct Args {
    flags: HashMap<String, String>,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `--key value` pairs, validating against the allowed flag list.
    pub fn parse(tokens: &[String], allowed: &[&str]) -> Result<Args, ArgError> {
        let mut flags = HashMap::new();
        let mut it = tokens.iter();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("expected a --flag, got `{tok}`")));
            };
            if !allowed.contains(&key) {
                return Err(ArgError(format!(
                    "unknown flag `--{key}` (allowed: {})",
                    allowed.iter().map(|f| format!("--{f}")).collect::<Vec<_>>().join(", ")
                )));
            }
            let Some(value) = it.next() else {
                return Err(ArgError(format!("flag `--{key}` is missing its value")));
            };
            if flags.insert(key.to_string(), value.clone()).is_some() {
                return Err(ArgError(format!("flag `--{key}` given twice")));
            }
        }
        Ok(Args { flags })
    }

    /// Required string flag.
    pub fn req(&self, key: &str) -> Result<&str, ArgError> {
        self.flags
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| ArgError(format!("missing required flag `--{key}`")))
    }

    /// Optional string flag with default.
    pub fn opt<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map_or(default, |s| s.as_str())
    }

    /// Typed flag with default; errors on unparsable values.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse::<T>().map_err(|_| ArgError(format!("flag `--{key}`: cannot parse `{v}`")))
            }
        }
    }

    /// Whether the flag was provided at all.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Closed-set flag: the value must be one of `allowed`; an absent flag
    /// resolves to `allowed[0]`.
    pub fn one_of<'a>(&'a self, key: &str, allowed: &[&'a str]) -> Result<&'a str, ArgError> {
        let v = self.opt(key, allowed[0]);
        if allowed.contains(&v) {
            Ok(v)
        } else {
            Err(ArgError(format!(
                "flag `--{key}`: expected one of {}, got `{v}`",
                allowed.join("|")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&toks("--input g.txt --k 7"), &["input", "k"]).unwrap();
        assert_eq!(a.req("input").unwrap(), "g.txt");
        assert_eq!(a.get::<usize>("k", 0).unwrap(), 7);
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&toks("--input g.txt"), &["input", "c"]).unwrap();
        assert_eq!(a.get::<f64>("c", 0.6).unwrap(), 0.6);
        assert_eq!(a.opt("algo", "gsr"), "gsr");
        assert!(!a.has("c"));
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = Args::parse(&toks("--bogus 1"), &["input"]).unwrap_err();
        assert!(err.0.contains("unknown flag"));
    }

    #[test]
    fn missing_value_rejected() {
        let err = Args::parse(&toks("--input"), &["input"]).unwrap_err();
        assert!(err.0.contains("missing its value"));
    }

    #[test]
    fn duplicate_rejected() {
        let err = Args::parse(&toks("--k 1 --k 2"), &["k"]).unwrap_err();
        assert!(err.0.contains("given twice"));
    }

    #[test]
    fn bad_type_rejected() {
        let a = Args::parse(&toks("--k seven"), &["k"]).unwrap();
        assert!(a.get::<usize>("k", 0).is_err());
    }

    #[test]
    fn one_of_validates_and_defaults() {
        let a = Args::parse(&toks("--format json"), &["format"]).unwrap();
        assert_eq!(a.one_of("format", &["text", "json"]).unwrap(), "json");
        let d = Args::parse(&toks(""), &["format"]).unwrap();
        assert_eq!(d.one_of("format", &["text", "json"]).unwrap(), "text");
        let bad = Args::parse(&toks("--format yaml"), &["format"]).unwrap();
        assert!(bad.one_of("format", &["text", "json"]).unwrap_err().0.contains("text|json"));
    }

    #[test]
    fn missing_required_rejected() {
        let a = Args::parse(&toks(""), &["input"]).unwrap();
        assert!(a.req("input").is_err());
    }
}
