//! The `simstar serve` and `simstar bench-serve` subcommands: the serving
//! layer's process entry point and its closed-loop load generator.

use crate::args::{ArgError, Args};
use simrank_star::{QueryEngineOptions, SimStarParams};
use ssr_serve::batcher::BatcherOptions;
use ssr_serve::client::{Client, Reply};
use ssr_serve::loadgen::{
    run_connections_phase, run_protocol_phases, run_sharded_phases, run_standard_phases, LoadPlan,
    ServeBenchMeta,
};
use ssr_serve::server::{Server, ServerOptions};
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::ToSocketAddrs;

/// `simstar serve`: bind, announce, block until a `shutdown` op arrives.
pub fn cmd_serve(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(
        rest,
        &[
            "input",
            "host",
            "port",
            "announce",
            "c",
            "k",
            "compress",
            "window-us",
            "max-batch",
            "workers",
            "queue",
            "cache",
            "cache-shards",
            "shards",
            "max-conns",
            "slow-query-us",
            "metrics-dump",
            "trace-sample",
            "trace-out",
        ],
    )?;
    let g = crate::commands::load_graph(&args)?;
    let params = SimStarParams { c: args.get("c", 0.6)?, iterations: args.get("k", 5usize)? };
    if !(0.0..1.0).contains(&params.c) || params.c == 0.0 {
        return Err(ArgError(format!("--c must be in (0,1), got {}", params.c)));
    }
    let shards = args.get("shards", 1usize)?;
    if shards == 0 || shards > 64 {
        return Err(ArgError(format!("--shards must be in 1..=64, got {shards}")));
    }
    let opts = ServerOptions {
        params,
        engine: QueryEngineOptions { compress: args.get("compress", false)?, ..Default::default() },
        cache_capacity: args.get("cache", 4096usize)?,
        cache_shards: args.get("cache-shards", 8usize)?,
        shards,
        batch: BatcherOptions {
            window_us: args.get("window-us", 500u64)?,
            max_batch: args.get("max-batch", 64usize)?,
            queue_capacity: args.get("queue", 1024usize)?,
            workers: args.get("workers", 1usize)?,
        },
        max_connections: args.get("max-conns", 256usize)?,
        slow_query_us: args.get("slow-query-us", 0u64)?,
        trace_sample: args.get("trace-sample", 0u64)?,
        trace_out: if args.has("trace-out") {
            Some(std::path::PathBuf::from(args.req("trace-out")?))
        } else {
            None
        },
    };
    let host = args.opt("host", "127.0.0.1").to_string();
    let port = args.get("port", 0u16)?;
    let (nodes, edges) = (g.node_count(), g.edge_count());
    let server = Server::start(g, &host, port, opts)
        .map_err(|e| ArgError(format!("binding {host}:{port}: {e}")))?;
    let addr = server.addr();
    // The listening line goes out immediately (not via the returned
    // string) so wrappers can scrape the ephemeral port while we block.
    let shard_note = if shards > 1 { format!(", shards={shards}") } else { String::new() };
    println!(
        "serving SimRank* on {addr} (n={nodes}, m={edges}, c={}, k={}{shard_note}) — \
         newline-JSON by default, binary ssb/1 after the `SSB1` magic; \
         send {{\"op\":\"shutdown\"}} to stop",
        params.c, params.iterations
    );
    let _ = std::io::stdout().flush();
    if args.has("announce") {
        let path = args.req("announce")?;
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| ArgError(format!("writing `{path}`: {e}")))?;
    }
    server.wait();
    // Final registry scrape before teardown: `--metrics-dump PATH` leaves
    // the Prometheus text exposition behind for CI artifacts.
    let dump = if args.has("metrics-dump") {
        let path = args.req("metrics-dump")?.to_string();
        std::fs::write(&path, server.metrics_prometheus())
            .map_err(|e| ArgError(format!("writing `{path}`: {e}")))?;
        format!("metrics written to {path}\n")
    } else {
        String::new()
    };
    server.shutdown();
    Ok(format!("server on {addr} stopped\n{dump}"))
}

/// Resolves the target server address from `--addr HOST:PORT`, or from a
/// `serve --announce` file via `--announce FILE [--wait-announce SECS]` —
/// the structured replacement for shell wait loops around announce files.
fn resolve_server_addr(args: &Args) -> Result<std::net::SocketAddr, ArgError> {
    if args.has("addr") {
        if args.has("announce") {
            return Err(ArgError("give either --addr or --announce, not both".into()));
        }
        let addr_str = args.req("addr")?;
        return addr_str
            .to_socket_addrs()
            .map_err(|e| ArgError(format!("resolving `{addr_str}`: {e}")))?
            .next()
            .ok_or_else(|| ArgError(format!("`{addr_str}` resolved to no address")));
    }
    if args.has("announce") {
        let path = args.req("announce")?;
        let secs = args.get("wait-announce", 10u64)?;
        return ssr_serve::loadgen::wait_for_announce(
            path,
            std::time::Duration::from_secs(secs.max(1)),
        )
        .map_err(ArgError);
    }
    Err(ArgError("one of --addr HOST:PORT or --announce FILE is required".into()))
}

/// `simstar bench-serve`: drive a running server through the standard
/// batching phases (serial / batched / cached), the protocol-comparison
/// phases (json_serial / ssb_serial / ssb_pipelined), and the
/// connection-scaling phase (conns_1k), emitting the
/// `ssr-bench/serve/v1` JSON that `bench_check` gates. With `--shards N`
/// (matching the server's `serve --shards N`) it instead runs the
/// shard-axis pair, emitting `serial_shardsN` / `batched_shardsN` modes.
pub fn cmd_bench_serve(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(
        rest,
        &[
            "addr",
            "announce",
            "wait-announce",
            "clients",
            "requests",
            "top-k",
            "window-us",
            "pipeline",
            "idle-conns",
            "shards",
            "name",
            "out",
            "smoke",
            "shutdown",
        ],
    )?;
    let smoke = args.get("smoke", false)?;
    let clients = args.get("clients", 16usize)?;
    let requests = args.get("requests", if smoke { 30usize } else { 125 })?;
    let top_k = args.get("top-k", 10usize)?;
    let window_us = args.get("window-us", 800u64)?;
    let pipeline = args.get("pipeline", 8usize)?;
    let idle_conns = args.get("idle-conns", if smoke { 256usize } else { 1024 })?;
    let name = args.opt("name", "serve").to_string();
    let out_path = args.opt("out", "BENCH_serve.json").to_string();
    let shards = args.get("shards", 1usize)?;
    if clients == 0 || requests == 0 {
        return Err(ArgError("--clients and --requests must be at least 1".into()));
    }
    let addr = resolve_server_addr(&args)?;
    let mut admin =
        Client::connect(addr).map_err(|e| ArgError(format!("connecting to `{addr}`: {e}")))?;
    let stats = admin.stats().map_err(|e| ArgError(format!("stats op failed: {e}")))?;
    let nodes = stats.nodes as usize;
    let edges = stats.edges as usize;
    if nodes == 0 {
        return Err(ArgError("server reports an empty graph".into()));
    }

    // Cache-off phases cycle every node (concurrent requests hit distinct
    // nodes); the cached phase hammers a small hot set.
    let pool: Vec<u32> = (0..nodes as u32).collect();
    let hot: Vec<u32> = (0..nodes.min(64) as u32).collect();
    let plan = LoadPlan::new(clients, requests, top_k, pool);
    let phases = if shards > 1 {
        // Shard-axis run: only the `_shardsN` pair — the caller points
        // this at a `serve --shards N` instance and merges the modes into
        // the same report/gate as an unsharded run.
        run_sharded_phases(addr, &plan, window_us, shards)
            .map_err(|e| ArgError(format!("sharded load run failed: {e}")))?
    } else {
        let mut phases = run_standard_phases(addr, &plan, hot.clone(), window_us)
            .map_err(|e| ArgError(format!("load run failed: {e}")))?;
        phases.extend(
            run_protocol_phases(addr, &plan, hot.clone(), window_us, pipeline)
                .map_err(|e| ArgError(format!("protocol load run failed: {e}")))?,
        );
        if idle_conns > 0 {
            let conns_plan =
                LoadPlan::new(clients, requests.div_ceil(2).max(5), top_k, plan.nodes.clone());
            phases.push(
                run_connections_phase(addr, &conns_plan, hot, window_us, pipeline, idle_conns)
                    .map_err(|e| ArgError(format!("connection-scaling run failed: {e}")))?,
            );
        }
        phases
    };

    let meta = ServeBenchMeta {
        smoke,
        dataset: name,
        nodes,
        edges,
        clients,
        window_us,
        pipeline,
        idle_conns,
        worker_threads: stats.worker_threads,
        top_k,
        c: stats.c,
        k: stats.iterations as usize,
    };
    let json = ssr_serve::loadgen::render_serve_json(&meta, &phases);
    std::fs::write(&out_path, &json).map_err(|e| ArgError(format!("writing `{out_path}`: {e}")))?;

    let mut out = format!(
        "# bench-serve: {addr} n={nodes} m={edges} clients={clients} \
         requests/client={requests} top-k={top_k} window={window_us}us pipeline={pipeline}\n"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>4} {:>9} {:>10} {:>10} {:>8} {:>6} {:>6}",
        "mode", "proto", "pipe", "qps", "p50_us", "p99_us", "hit_rate", "shed", "conns"
    );
    for p in &phases {
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>4} {:>9.1} {:>10.1} {:>10.1} {:>7.1}% {:>6} {:>6}",
            p.name,
            p.protocol,
            p.pipeline,
            p.report.qps(),
            p.report.percentile_us(0.50),
            p.report.percentile_us(0.99),
            100.0 * p.hit_rate(),
            p.shed,
            p.connections,
        );
    }
    let qps = |n: &str| phases.iter().find(|p| p.name == n).map_or(0.0, |p| p.report.qps());
    if qps("serial") > 0.0 {
        let _ = writeln!(out, "speedup batched vs serial: {:.2}x", qps("batched") / qps("serial"));
    }
    if qps("json_serial") > 0.0 {
        let _ = writeln!(
            out,
            "speedup ssb pipelined vs json serial: {:.2}x",
            qps("ssb_pipelined") / qps("json_serial")
        );
    }
    // When the server samples traces, surface the slowest sampled
    // requests (by end-to-end time) with their trace ids, so a slow run
    // can be cross-referenced against `trace` dumps / `--trace-out` files.
    if let Ok(dump) = admin.trace_dump() {
        if dump.sample_every > 0 && !dump.traces.is_empty() {
            let mut traces = dump.traces;
            traces.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.id.cmp(&b.id)));
            let show = traces.len().min(5);
            let _ = writeln!(
                out,
                "slowest sampled requests (1-in-{} sampling, {} trace(s) in ring):",
                dump.sample_every,
                traces.len()
            );
            for t in traces.iter().take(show) {
                let stage = |name: &str| {
                    t.spans
                        .iter()
                        .find(|s| s.name == name)
                        .map_or(0.0, |s| s.dur_ns as f64 / 1000.0)
                };
                let _ = writeln!(
                    out,
                    "  trace={} total={:.1}us decode={:.1}us cache={:.1}us queue={:.1}us \
                     engine={:.1}us merge={:.1}us encode={:.1}us",
                    t.id,
                    t.total_ns as f64 / 1000.0,
                    stage("decode"),
                    stage("cache"),
                    stage("queue"),
                    stage("engine"),
                    stage("merge"),
                    stage("encode"),
                );
            }
        }
    }
    let _ = writeln!(out, "wrote {out_path}");
    if args.get("shutdown", false)? {
        admin.shutdown().map_err(|e| ArgError(format!("shutdown op failed: {e}")))?;
        let _ = writeln!(out, "server asked to shut down");
    }
    Ok(out)
}

/// `simstar serve-probe`: print a running server's top-k answer for every
/// probed query node, one `query\tnode\tscore` line per match, scores in
/// shortest-round-trip decimal. Diffing two probes therefore proves (or
/// refutes) bit identity of the servers' answers — the push-CI gate runs
/// this against `serve --shards 1` and `--shards N` instances of the same
/// graph and requires an empty diff.
///
/// With `--metrics true` it instead fetches the server's observability
/// registry through the `metrics` op, validates it, and prints it as
/// Prometheus text exposition — the CI scrape path. `--shutdown true`
/// asks the server to stop afterwards (which is what lets CI collect a
/// `serve --metrics-dump` file from a gracefully exiting server).
///
/// With `--healthz true` it is a readiness check: one `ping` round-trip,
/// printing the served epoch and shard count. Any failure (can't connect,
/// timeout, protocol error) surfaces as the usual nonzero process exit,
/// so wrappers can gate on it directly.
pub fn cmd_serve_probe(rest: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(
        rest,
        &["addr", "announce", "wait-announce", "top-k", "count", "metrics", "shutdown", "healthz"],
    )?;
    let addr = resolve_server_addr(&args)?;
    let mut client =
        Client::connect(addr).map_err(|e| ArgError(format!("connecting to `{addr}`: {e}")))?;
    if args.get("healthz", false)? {
        let (epoch, shards) = client.ping().map_err(|e| ArgError(format!("ping failed: {e}")))?;
        return Ok(format!("ok epoch={epoch} shards={shards}\n"));
    }
    if args.get("metrics", false)? {
        let reply = client.metrics().map_err(|e| ArgError(format!("metrics op failed: {e}")))?;
        let text = reply.snapshot.render_prometheus();
        // Self-check before printing: a scrape that does not parse as
        // exposition text is a bug here, not downstream in CI.
        ssr_obs::validate_exposition(&text)
            .map_err(|e| ArgError(format!("metrics exposition invalid: {e}")))?;
        if args.get("shutdown", false)? {
            client.shutdown().map_err(|e| ArgError(format!("shutdown op failed: {e}")))?;
        }
        return Ok(text);
    }
    let stats = client.stats().map_err(|e| ArgError(format!("stats op failed: {e}")))?;
    let nodes = stats.nodes as usize;
    if nodes == 0 {
        return Err(ArgError("server reports an empty graph".into()));
    }
    let top_k = args.get("top-k", 10usize)?;
    let count = args.get("count", nodes)?.min(nodes);
    if count == 0 {
        return Err(ArgError("--count must be at least 1".into()));
    }
    let mut out = format!(
        "# serve-probe: n={nodes} m={} top-k={top_k} probed={count} (query\tnode\tscore)\n",
        stats.edges
    );
    for q in 0..count as u32 {
        match client.query(q, top_k).map_err(|e| ArgError(format!("query {q}: {e}")))? {
            Reply::Ok(r) => {
                for &(v, s) in r.matches.iter() {
                    let _ = writeln!(out, "{q}\t{v}\t{s}");
                }
            }
            Reply::Shed => {
                return Err(ArgError(format!(
                    "query {q} was shed — probe the server without competing load"
                )))
            }
            Reply::Error(e) => return Err(ArgError(format!("query {q}: {e}"))),
        }
    }
    Ok(out)
}
