//! Small dense solvers.
//!
//! mtx-SR reduces SimRank to the `r×r` fixed point
//! `M = (1−C)·ΣVᵀVΣ + C·B M Bᵀ`; we solve it either by fixed-point iteration
//! (contractive because `C·‖B‖² < 1` for stochastic `Q`) or exactly by
//! unrolling to the `r²×r²` linear system `(I − C·B⊗B) vec(M) = vec(RHS)`
//! with Gaussian elimination.

use crate::Dense;

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` when `A` is (numerically) singular.
pub fn solve_dense(a: &Dense, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square required");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut m = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut best = col;
        let mut best_abs = m.get(col, col).abs();
        for r in (col + 1)..n {
            let v = m.get(r, col).abs();
            if v > best_abs {
                best = r;
                best_abs = v;
            }
        }
        if best_abs < 1e-300 {
            return None;
        }
        if best != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(best, c));
                m.set(best, c, tmp);
            }
            x.swap(col, best);
        }
        let pivot = m.get(col, col);
        for r in (col + 1)..n {
            let factor = m.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - factor * m.get(col, c);
                m.set(r, c, v);
            }
            x[r] -= factor * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for (c, &xc) in x.iter().enumerate().take(n).skip(col + 1) {
            acc -= m.get(col, c) * xc;
        }
        x[col] = acc / m.get(col, col);
    }
    Some(x)
}

/// Solves the Sylvester-like fixed point `M = RHS + c · B M Bᵀ` by iteration.
/// Converges geometrically when `c · ‖B‖₂² < 1`. Returns the fixed point and
/// the number of iterations used.
pub fn solve_discrete_fixed_point(
    rhs: &Dense,
    b: &Dense,
    c: f64,
    tol: f64,
    max_iters: usize,
) -> (Dense, usize) {
    let bt = b.transpose();
    let mut m = rhs.clone();
    for it in 0..max_iters {
        // next = RHS + c * B M Bᵀ
        let bm = b.matmul(&m);
        let mut next = bm.matmul(&bt);
        next.scale(c);
        next.add_assign(rhs);
        let diff = next.max_diff(&m);
        m = next;
        if diff <= tol {
            return (m, it + 1);
        }
    }
    (m, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = Dense::identity(3);
        let x = solve_dense(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [5; 10] => x = [1, 3]
        let a = Dense::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve_dense(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Dense::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve_dense(&a, &[7.0, 9.0]).unwrap();
        assert_eq!(x, vec![9.0, 7.0]);
    }

    #[test]
    fn singular_returns_none() {
        let a = Dense::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve_dense(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn fixed_point_matches_direct_solve() {
        // M = RHS + c B M Bᵀ with small random-ish B (spectral norm < 1).
        let b = Dense::from_rows(&[vec![0.4, 0.1], vec![0.2, 0.3]]);
        let rhs = Dense::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let c = 0.6;
        let (m, iters) = solve_discrete_fixed_point(&rhs, &b, c, 1e-14, 500);
        assert!(iters < 500);
        // Verify the fixed-point equation holds.
        let bm = b.matmul(&m);
        let mut check = bm.matmul(&b.transpose());
        check.scale(c);
        check.add_assign(&rhs);
        assert!(check.approx_eq(&m, 1e-10));
    }
}
