//! # ssr-linalg — dense and sparse linear algebra for the SimRank\* suite
//!
//! No linear-algebra crates are available offline, so this crate implements
//! exactly the kernel set the paper's algorithms need:
//!
//! * [`Dense`] — row-major dense `f64` matrices with the operations the
//!   matrix forms of SimRank/SimRank\* use: mat-mul (thread-parallel over
//!   row blocks), transpose, axpy-style updates, the max-norm
//!   `‖X‖_max = max |x_ij|` of Lemma 3, and symmetry checks.
//! * [`Csr`] — compressed-sparse-row matrices, built from graphs:
//!   [`Csr::backward_transition`] is the paper's `Q` (row-normalised `Aᵀ`),
//!   [`Csr::forward_transition`] is RWR's `W` (row-normalised `A`). The hot
//!   kernel is [`Csr::mul_dense`] (`sparse · dense`), the single
//!   multiplication per SimRank\* iteration of Theorem 2.
//! * [`svd`] — truncated SVD by block power iteration with Gram–Schmidt
//!   re-orthonormalisation, for the mtx-SR baseline (Li et al., EDBT'10).
//! * [`solve`] — dense Gaussian elimination with partial pivoting for the
//!   small `r×r` fixed-point systems mtx-SR produces.
//! * [`parallel`] — the shared row-block work dispatcher behind every
//!   blocked matrix sweep (kernel applications, the all-pairs engine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
pub mod parallel;
pub mod solve;
mod sparse;
pub mod svd;

pub use dense::Dense;
pub use parallel::dispatch_row_blocks;
pub use sparse::Csr;

/// Tolerance used by approximate comparisons in tests and convergence checks.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Worker-thread budget shared by every parallel kernel in the workspace
/// (dense mat-mul, the blocked `X·Qᵀ` lane kernels, the sieved product).
///
/// Defaults to the machine's available parallelism capped at 16 — the
/// kernels are memory-bound well before that. The `SSR_THREADS` environment
/// variable overrides the default with an explicit positive thread count
/// (useful for pinning benchmark runs or disabling parallelism entirely
/// with `SSR_THREADS=1`).
pub fn available_threads() -> usize {
    match std::env::var("SSR_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(t) if t >= 1 => t,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()).min(16),
    }
}
