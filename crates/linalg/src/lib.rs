//! # ssr-linalg — dense and sparse linear algebra for the SimRank\* suite
//!
//! No linear-algebra crates are available offline, so this crate implements
//! exactly the kernel set the paper's algorithms need:
//!
//! * [`Dense`] — row-major dense `f64` matrices with the operations the
//!   matrix forms of SimRank/SimRank\* use: mat-mul (thread-parallel over
//!   row blocks), transpose, axpy-style updates, the max-norm
//!   `‖X‖_max = max |x_ij|` of Lemma 3, and symmetry checks.
//! * [`Csr`] — compressed-sparse-row matrices, built from graphs:
//!   [`Csr::backward_transition`] is the paper's `Q` (row-normalised `Aᵀ`),
//!   [`Csr::forward_transition`] is RWR's `W` (row-normalised `A`). The hot
//!   kernel is [`Csr::mul_dense`] (`sparse · dense`), the single
//!   multiplication per SimRank\* iteration of Theorem 2.
//! * [`svd`] — truncated SVD by block power iteration with Gram–Schmidt
//!   re-orthonormalisation, for the mtx-SR baseline (Li et al., EDBT'10).
//! * [`solve`] — dense Gaussian elimination with partial pivoting for the
//!   small `r×r` fixed-point systems mtx-SR produces.
//! * [`parallel`] — the shared row-block work dispatcher behind every
//!   blocked matrix sweep (kernel applications, the all-pairs engine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
pub mod parallel;
pub mod solve;
mod sparse;
pub mod svd;

pub use dense::Dense;
pub use parallel::dispatch_row_blocks;
pub use sparse::Csr;

/// Tolerance used by approximate comparisons in tests and convergence checks.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Worker-thread budget shared by every parallel kernel in the workspace
/// (dense mat-mul, the blocked `X·Qᵀ` lane kernels, the sieved product).
///
/// Defaults to the machine's available parallelism capped at 16 — the
/// kernels are memory-bound well before that. The `SSR_THREADS` environment
/// variable overrides the default with an explicit positive thread count
/// (useful for pinning benchmark runs or disabling parallelism entirely
/// with `SSR_THREADS=1`). `SSR_THREADS=0`, surrounding whitespace, and
/// unparsable values all fall back to the detected core count — a zero or
/// garbage override must never turn into "zero workers" or a panic; see
/// [`threads_from_override`] for the exact rules.
pub fn available_threads() -> usize {
    threads_from_override(std::env::var("SSR_THREADS").ok().as_deref())
}

/// Resolves an `SSR_THREADS`-style override string to a thread count:
/// a positive integer (after trimming whitespace) wins; everything else —
/// unset, empty, `0`, negative, or unparsable — falls back to the detected
/// available parallelism capped at 16. Factored out of
/// [`available_threads`] so the fallback rules are unit-testable without
/// racing on the process environment.
pub fn threads_from_override(raw: Option<&str>) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(t) if t >= 1 => t,
        _ => detected_threads(),
    }
}

/// The machine's available parallelism, capped at 16 (see
/// [`available_threads`]); `1` when detection fails.
fn detected_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(16)
}

#[cfg(test)]
mod thread_budget_tests {
    use super::*;

    #[test]
    fn positive_override_wins_and_is_uncapped() {
        assert_eq!(threads_from_override(Some("3")), 3);
        assert_eq!(threads_from_override(Some("1")), 1);
        // An explicit override is allowed past the detection cap.
        assert_eq!(threads_from_override(Some("64")), 64);
    }

    #[test]
    fn whitespace_is_trimmed() {
        assert_eq!(threads_from_override(Some(" 8 ")), 8);
        assert_eq!(threads_from_override(Some("\t2\n")), 2);
    }

    #[test]
    fn zero_falls_back_to_detected() {
        assert_eq!(threads_from_override(Some("0")), detected_threads());
        assert_eq!(threads_from_override(Some(" 0 ")), detected_threads());
    }

    #[test]
    fn garbage_falls_back_to_detected() {
        for bad in ["", "abc", "-2", "1.5", "2x", "٣"] {
            assert_eq!(threads_from_override(Some(bad)), detected_threads(), "{bad:?}");
        }
    }

    #[test]
    fn unset_falls_back_to_detected() {
        let t = threads_from_override(None);
        assert_eq!(t, detected_threads());
        assert!((1..=16).contains(&t));
    }
}
