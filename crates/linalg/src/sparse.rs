use crate::dense::{num_threads, Dense};
use ssr_graph::DiGraph;

/// Compressed-sparse-row `f64` matrix.
///
/// Rows hold column indices in ascending order. The two graph constructors
/// produce the stochastic matrices of the paper:
///
/// * [`Csr::backward_transition`] — `Q` with `Q[i][j] = 1/|I(i)|` if
///   `j -> i ∈ E` (row-normalised `Aᵀ`), the operator of SimRank and
///   SimRank\*. Rows of nodes with `I(i) = ∅` are empty (all-zero), exactly
///   matching the `s(a, b) = 0 if I(a) = ∅` base case.
/// * [`Csr::forward_transition`] — `W` with `W[i][j] = 1/|O(i)|` if
///   `i -> j ∈ E`, the operator of RWR/PPR.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds from `(row, col, value)` triplets. Duplicate coordinates are
    /// summed. Panics if any coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut t: Vec<(u32, u32, f64)> = triplets.to_vec();
        for &(r, c, _) in &t {
            assert!((r as usize) < rows && (c as usize) < cols, "triplet out of range");
        }
        t.sort_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(t.len());
        let mut values: Vec<f64> = Vec::with_capacity(t.len());
        let mut i = 0;
        for r in 0..rows {
            while i < t.len() && t[i].0 as usize == r {
                let c = t[i].1;
                let mut v = t[i].2;
                i += 1;
                while i < t.len() && t[i].0 as usize == r && t[i].1 == c {
                    v += t[i].2;
                    i += 1;
                }
                indices.push(c);
                values.push(v);
            }
            indptr[r + 1] = indices.len();
        }
        Csr { rows, cols, indptr, indices, values }
    }

    /// The backward transition matrix `Q` of the paper (row-normalised `Aᵀ`).
    pub fn backward_transition(g: &DiGraph) -> Self {
        let n = g.node_count();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::with_capacity(g.edge_count());
        let mut values = Vec::with_capacity(g.edge_count());
        indptr.push(0);
        for i in g.nodes() {
            let nb = g.in_neighbors(i);
            if !nb.is_empty() {
                let w = 1.0 / nb.len() as f64;
                for &j in nb {
                    indices.push(j);
                    values.push(w);
                }
            }
            indptr.push(indices.len());
        }
        Csr { rows: n, cols: n, indptr, indices, values }
    }

    /// The forward transition matrix `W` of RWR (row-normalised `A`).
    pub fn forward_transition(g: &DiGraph) -> Self {
        let n = g.node_count();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::with_capacity(g.edge_count());
        let mut values = Vec::with_capacity(g.edge_count());
        indptr.push(0);
        for i in g.nodes() {
            let nb = g.out_neighbors(i);
            if !nb.is_empty() {
                let w = 1.0 / nb.len() as f64;
                for &j in nb {
                    indices.push(j);
                    values.push(w);
                }
            }
            indptr.push(indices.len());
        }
        Csr { rows: n, cols: n, indptr, indices, values }
    }

    /// The (unweighted) adjacency matrix `A` of a graph.
    pub fn adjacency(g: &DiGraph) -> Self {
        let n = g.node_count();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::with_capacity(g.edge_count());
        indptr.push(0);
        for i in g.nodes() {
            indices.extend_from_slice(g.out_neighbors(i));
            indptr.push(indices.len());
        }
        let values = vec![1.0; indices.len()];
        Csr { rows: n, cols: n, indptr, indices, values }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(column, value)` pairs of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Sum of row `i`'s values (1.0 for stochastic rows, 0.0 for empty ones).
    pub fn row_sum(&self, i: usize) -> f64 {
        self.values[self.indptr[i]..self.indptr[i + 1]].iter().sum()
    }

    /// `Mᵀ` (entries re-bucketed by column).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let pos = cursor[c as usize];
                indices[pos] = r as u32;
                values[pos] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr { rows: self.cols, cols: self.rows, indptr, indices, values }
    }

    /// Dense product `self · B` — the per-iteration kernel of SimRank\*
    /// (Theorem 2 needs exactly one of these per iteration). Parallelised
    /// over output-row blocks.
    pub fn mul_dense(&self, b: &Dense) -> Dense {
        assert_eq!(self.cols, b.rows(), "dimension mismatch");
        let bc = b.cols();
        let mut out = Dense::zeros(self.rows, bc);
        let work = self.nnz() * bc;
        let threads = num_threads();
        if work < 1 << 22 || threads == 1 || self.rows < 2 {
            self.mul_dense_rows(b, out.as_mut_slice(), 0, self.rows);
            return out;
        }
        let rows_per = self.rows.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, chunk) in out.as_mut_slice().chunks_mut(rows_per * bc).enumerate() {
                let start = t * rows_per;
                let me = &*self;
                scope.spawn(move || {
                    let nrows = chunk.len() / bc;
                    me.mul_dense_into(b, chunk, start, start + nrows);
                });
            }
        });
        out
    }

    fn mul_dense_rows(&self, b: &Dense, out: &mut [f64], lo: usize, hi: usize) {
        self.mul_dense_into(b, out, lo, hi)
    }

    /// Writes rows `lo..hi` of `self · B` into `out` (which holds exactly
    /// those rows).
    fn mul_dense_into(&self, b: &Dense, out: &mut [f64], lo: usize, hi: usize) {
        let bc = b.cols();
        for r in lo..hi {
            let out_row = &mut out[(r - lo) * bc..(r - lo + 1) * bc];
            for (c, v) in self.row_entries(r) {
                let b_row = b.row(c as usize);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += v * bv;
                }
            }
        }
    }

    /// Dense matrix-vector product `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// `self · x` written into a caller-owned buffer (every entry of `out`
    /// is overwritten; no allocation). Backs the query engine's reusable
    /// scratch vectors.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        assert_eq!(self.rows, out.len(), "output dimension mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.row_entries(r).map(|(c, v)| v * x[c as usize]).sum();
        }
    }

    /// `xᵀ · self` (left multiplication by a row vector).
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.vec_mul_into(x, &mut y);
        y
    }

    /// `xᵀ · self` written into a caller-owned buffer (every entry of `out`
    /// is overwritten; no allocation).
    pub fn vec_mul_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(self.rows, x.len(), "dimension mismatch");
        assert_eq!(self.cols, out.len(), "output dimension mismatch");
        out.fill(0.0);
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (c, v) in self.row_entries(r) {
                out[c as usize] += xv * v;
            }
        }
    }

    /// Materialises the dense form (test/debug helper; `O(rows·cols)`).
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                d.add_to(r, c as usize, v);
            }
        }
        d
    }

    /// Estimated resident bytes (Fig. 6(h) accounting).
    pub fn estimated_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn backward_transition_rows_are_stochastic_or_empty() {
        let g = diamond();
        let q = Csr::backward_transition(&g);
        assert_eq!(q.row_sum(0), 0.0); // I(0) = ∅
        assert!((q.row_sum(1) - 1.0).abs() < 1e-12);
        assert!((q.row_sum(3) - 1.0).abs() < 1e-12);
        // Q[3] = {1: 0.5, 2: 0.5}
        let entries: Vec<_> = q.row_entries(3).collect();
        assert_eq!(entries, vec![(1, 0.5), (2, 0.5)]);
    }

    #[test]
    fn forward_transition_matches_out_neighbors() {
        let g = diamond();
        let w = Csr::forward_transition(&g);
        let entries: Vec<_> = w.row_entries(0).collect();
        assert_eq!(entries, vec![(1, 0.5), (2, 0.5)]);
        assert_eq!(w.row_sum(3), 0.0); // O(3) = ∅
    }

    #[test]
    fn adjacency_counts_paths_when_powered() {
        let g = diamond();
        let a = Csr::adjacency(&g).to_dense();
        let a2 = a.matmul(&a);
        // Two paths of length 2 from 0 to 3.
        assert_eq!(a2.get(0, 3), 2.0);
    }

    #[test]
    fn mul_dense_equals_dense_matmul() {
        let g = diamond();
        let q = Csr::backward_transition(&g);
        let s = Dense::from_rows(&[
            vec![1.0, 0.1, 0.2, 0.3],
            vec![0.1, 1.0, 0.4, 0.5],
            vec![0.2, 0.4, 1.0, 0.6],
            vec![0.3, 0.5, 0.6, 1.0],
        ]);
        let sparse_way = q.mul_dense(&s);
        let dense_way = q.to_dense().matmul(&s);
        assert!(sparse_way.approx_eq(&dense_way, 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let g = diamond();
        let q = Csr::backward_transition(&g);
        let qtt = q.transpose().transpose();
        assert!(qtt.to_dense().approx_eq(&q.to_dense(), 0.0));
    }

    #[test]
    fn transpose_of_dense_agrees() {
        let g = diamond();
        let q = Csr::backward_transition(&g);
        assert!(q.transpose().to_dense().approx_eq(&q.to_dense().transpose(), 0.0));
    }

    #[test]
    fn mul_vec_and_vec_mul() {
        let g = diamond();
        let q = Csr::backward_transition(&g);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = q.mul_vec(&x);
        // Row 3 of Q = {1:0.5, 2:0.5} => y[3] = 0.5*2 + 0.5*3 = 2.5
        assert!((y[3] - 2.5).abs() < 1e-12);
        // vec_mul equals mul_vec on the transpose.
        let yt = q.transpose().vec_mul(&x);
        let y2 = q.mul_vec(&x);
        for (a, b) in yt.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = Csr::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 5.0)]);
        assert_eq!(m.nnz(), 2);
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 3.0);
        assert_eq!(d.get(1, 0), 5.0);
    }

    #[test]
    fn from_triplets_empty_rows() {
        let m = Csr::from_triplets(4, 4, &[(2, 0, 1.0)]);
        assert_eq!(m.row_entries(0).count(), 0);
        assert_eq!(m.row_entries(2).count(), 1);
        assert_eq!(m.row_entries(3).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_triplets_bounds_checked() {
        let _ = Csr::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn empty_matrix() {
        let m = Csr::from_triplets(0, 0, &[]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.rows(), 0);
    }
}
