//! Truncated SVD by block power iteration.
//!
//! The mtx-SR baseline (Li et al., EDBT'10) factors the transition matrix
//! `Q ≈ U Σ Vᵀ` at a small rank `r` and solves SimRank in the compressed
//! space. No LAPACK is available offline, so we implement the classic
//! subspace-iteration scheme:
//!
//! 1. start from a deterministic pseudo-random block `X ∈ ℝ^{n×r}`;
//! 2. repeat: `X ← Aᵀ(A X)`, re-orthonormalising with modified Gram–Schmidt
//!    (this drives `X` to the top right-singular subspace of `A`);
//! 3. recover `σ_i = ‖A v_i‖` and `u_i = A v_i / σ_i`.
//!
//! Accuracy is what subspace iteration gives — fine for mtx-SR, whose whole
//! point in the paper's evaluation is that low-rank approximation is slow and
//! memory-hungry, not bit-exact.

use crate::{Csr, Dense};

/// Result of a truncated SVD `A ≈ U Σ Vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, `n × r` (columns orthonormal).
    pub u: Dense,
    /// Singular values, descending, length `r`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × r` (columns orthonormal).
    pub v: Dense,
}

/// Computes a rank-`r` truncated SVD of the sparse matrix `a` using the
/// randomized range-finder scheme (Halko–Martinsson–Tropp structure):
///
/// 1. `Y = A·Ω` for a seeded random block `Ω`, orthonormalised to `Qm`;
/// 2. `power_iters` rounds of `Qm ← orth(A·orth(Aᵀ·Qm))` to sharpen the
///    range (2–8 rounds suffice for graph transition matrices);
/// 3. Rayleigh–Ritz on `Bᵀ = Aᵀ·Qm`: eigendecompose the small `r×r` Gram
///    matrix `B Bᵀ` with cyclic Jacobi and rotate back.
///
/// `seed` makes the start block — and hence the output — deterministic.
pub fn truncated_svd(a: &Csr, r: usize, power_iters: usize, seed: u64) -> TruncatedSvd {
    let n_rows = a.rows();
    let n_cols = a.cols();
    let r = r.min(n_cols).min(n_rows).max(1);
    let at = a.transpose();

    // Deterministic random start block Ω (SplitMix64 stream), n_cols × r.
    let mut omega = Dense::zeros(n_cols, r);
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for i in 0..n_cols {
        for j in 0..r {
            omega.set(i, j, next());
        }
    }

    // Range finder with power iterations.
    let mut qm = a.mul_dense(&omega); // n_rows × r
    orthonormalize_columns(&mut qm);
    for _ in 0..power_iters {
        let mut z = at.mul_dense(&qm); // n_cols × r
        orthonormalize_columns(&mut z);
        qm = a.mul_dense(&z);
        orthonormalize_columns(&mut qm);
    }

    // Project: Bᵀ = Aᵀ·Qm (n_cols × r), so B = Qmᵀ·A (r × n_cols).
    let bt = at.mul_dense(&qm);
    // Small eigenproblem on B·Bᵀ = (Bᵀ)ᵀ(Bᵀ), r×r.
    let g = gram(&bt);
    let (evals, evecs) = jacobi_eigen_symmetric(&g, 64);
    let mut order: Vec<usize> = (0..evals.len()).collect();
    order.sort_by(|&i, &j| evals[j].partial_cmp(&evals[i]).expect("finite eigenvalues"));

    let mut sigma = Vec::with_capacity(r);
    let mut u = Dense::zeros(n_rows, r);
    let mut v = Dense::zeros(n_cols, r);
    for (new_idx, &old_idx) in order.iter().enumerate() {
        let lam = evals[old_idx].max(0.0);
        let s = lam.sqrt();
        sigma.push(s);
        // u_new = Qm · w  (w = eigenvector of B Bᵀ)
        for row in 0..n_rows {
            let mut acc = 0.0;
            for k in 0..r {
                acc += qm.get(row, k) * evecs.get(k, old_idx);
            }
            u.set(row, new_idx, acc);
        }
        // v_new = Bᵀ · w / σ
        for row in 0..n_cols {
            let mut acc = 0.0;
            for k in 0..r {
                acc += bt.get(row, k) * evecs.get(k, old_idx);
            }
            v.set(row, new_idx, if s > 1e-12 { acc / s } else { 0.0 });
        }
    }
    TruncatedSvd { u, sigma, v }
}

/// Modified Gram–Schmidt on the columns of `m`. A column that becomes
/// (numerically) zero — the block exceeded the matrix rank — is replaced by
/// the first canonical basis vector that survives orthogonalisation against
/// the already-finished columns, keeping the block exactly orthonormal.
fn orthonormalize_columns(m: &mut Dense) {
    let (rows, cols) = (m.rows(), m.cols());
    for j in 0..cols {
        project_out_previous(m, j);
        if !try_normalize(m, j) {
            // Deflated column: substitute basis vectors until one sticks.
            let mut replaced = false;
            for basis in 0..rows {
                for i in 0..rows {
                    m.set(i, j, if i == basis { 1.0 } else { 0.0 });
                }
                project_out_previous(m, j);
                if try_normalize(m, j) {
                    replaced = true;
                    break;
                }
            }
            if !replaced {
                // rows < cols: no orthogonal direction left; leave zero.
                for i in 0..rows {
                    m.set(i, j, 0.0);
                }
            }
        }
    }
}

/// Subtracts the projections of column `j` onto columns `0..j`.
fn project_out_previous(m: &mut Dense, j: usize) {
    let rows = m.rows();
    for k in 0..j {
        let mut dot = 0.0;
        for i in 0..rows {
            dot += m.get(i, j) * m.get(i, k);
        }
        if dot != 0.0 {
            for i in 0..rows {
                let v = m.get(i, j) - dot * m.get(i, k);
                m.set(i, j, v);
            }
        }
    }
}

/// Normalises column `j`; returns false when its norm is numerically zero.
fn try_normalize(m: &mut Dense, j: usize) -> bool {
    let rows = m.rows();
    let mut norm = 0.0;
    for i in 0..rows {
        norm += m.get(i, j) * m.get(i, j);
    }
    let norm = norm.sqrt();
    if norm <= 1e-10 {
        return false;
    }
    for i in 0..rows {
        m.set(i, j, m.get(i, j) / norm);
    }
    true
}

/// `G = MᵀM` (small `r×r`).
fn gram(m: &Dense) -> Dense {
    let (rows, cols) = (m.rows(), m.cols());
    let mut g = Dense::zeros(cols, cols);
    for i in 0..cols {
        for j in i..cols {
            let mut acc = 0.0;
            for k in 0..rows {
                acc += m.get(k, i) * m.get(k, j);
            }
            g.set(i, j, acc);
            g.set(j, i, acc);
        }
    }
    g
}

/// Cyclic Jacobi eigendecomposition of a small symmetric matrix. Returns
/// `(eigenvalues, eigenvector-columns)`.
pub fn jacobi_eigen_symmetric(a: &Dense, max_sweeps: usize) -> (Vec<f64>, Dense) {
    assert_eq!(a.rows(), a.cols(), "square required");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Dense::identity(n);
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j).abs();
            }
        }
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let evals = (0..n).map(|i| m.get(i, i)).collect();
    (evals, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_on_diagonal_is_identity() {
        let a = Dense::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let (evals, _) = jacobi_eigen_symmetric(&a, 8);
        let mut e = evals.clone();
        e.sort_by(|x, y| y.partial_cmp(x).unwrap());
        assert!((e[0] - 3.0).abs() < 1e-12);
        assert!((e[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Dense::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (evals, evecs) = jacobi_eigen_symmetric(&a, 16);
        let mut e = evals.clone();
        e.sort_by(|x, y| y.partial_cmp(x).unwrap());
        assert!((e[0] - 3.0).abs() < 1e-10);
        assert!((e[1] - 1.0).abs() < 1e-10);
        // Eigenvector columns are orthonormal.
        let mut dot = 0.0;
        for k in 0..2 {
            dot += evecs.get(k, 0) * evecs.get(k, 1);
        }
        assert!(dot.abs() < 1e-10);
    }

    #[test]
    fn svd_reconstructs_low_rank_matrix() {
        // Rank-2 matrix built from two outer products.
        let n = 12;
        let mut triplets = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let v = (i as f64 + 1.0) * (j as f64 + 1.0) / (n as f64 * n as f64)
                    + if (i + j) % 2 == 0 { 0.05 } else { -0.05 };
                triplets.push((i as u32, j as u32, v));
            }
        }
        let a = Csr::from_triplets(n, n, &triplets);
        let svd = truncated_svd(&a, 2, 30, 42);
        // Reconstruct and compare to the dense original.
        let dense = a.to_dense();
        let mut recon = Dense::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..2 {
                    acc += svd.u.get(i, k) * svd.sigma[k] * svd.v.get(j, k);
                }
                recon.set(i, j, acc);
            }
        }
        assert!(
            dense.max_diff(&recon) < 1e-6,
            "rank-2 matrix should reconstruct exactly, err = {}",
            dense.max_diff(&recon)
        );
    }

    #[test]
    fn singular_values_descend_and_nonneg() {
        let g = ssr_graph::DiGraph::from_edges(
            6,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 0)],
        )
        .unwrap();
        let q = Csr::backward_transition(&g);
        let svd = truncated_svd(&q, 4, 25, 7);
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn u_and_v_columns_orthonormal() {
        let g = ssr_graph::DiGraph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 4), (2, 6)],
        )
        .unwrap();
        let q = Csr::backward_transition(&g);
        let svd = truncated_svd(&q, 3, 25, 11);
        for a in 0..3 {
            for b in 0..3 {
                let mut dot_v = 0.0;
                for k in 0..8 {
                    dot_v += svd.v.get(k, a) * svd.v.get(k, b);
                }
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot_v - expect).abs() < 1e-6, "Vᵀ V != I at ({a},{b})");
            }
        }
    }
}
