use std::fmt;

/// Row-major dense `f64` matrix.
///
/// Sized for similarity matrices: `n × n` with `n` up to a few tens of
/// thousands on a laptop (8 bytes/entry). Multiplications above
/// `PARALLEL_THRESHOLD` FLOPs are split over row blocks with std scoped
/// threads; results are bit-identical to the serial path because each
/// output row is produced by exactly one thread with the same accumulation
/// order.
#[derive(Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Minimum `rows * cols * inner` product size before [`Dense::matmul`]
/// parallelises.
pub const PARALLEL_THRESHOLD: usize = 1 << 22;

impl Dense {
    /// All-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// `n × n` diagonal matrix `diag(c, c, …)`.
    pub fn scaled_identity(n: usize, c: f64) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = c;
        }
        m
    }

    /// Builds from a row-major buffer. Panics unless
    /// `data.len() == rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Dense { rows, cols, data }
    }

    /// Builds from nested rows (test convenience). Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Dense { rows: r, cols: c, data }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to entry `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `Aᵀ`.
    pub fn transpose(&self) -> Dense {
        let mut t = Dense::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Dense) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Dense) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// `self += c` on the diagonal.
    pub fn add_diagonal(&mut self, c: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += c;
        }
    }

    /// Symmetrises in place: `self ← (self + selfᵀ)`. Requires square.
    /// (Callers that want the average scale by 0.5 themselves — SimRank\*'s
    /// recurrence adds `Q Ŝ + (Q Ŝ)ᵀ` unaveraged.)
    pub fn add_transpose_inplace(&mut self) {
        assert_eq!(self.rows, self.cols, "square required");
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                let s = self.data[i * n + j] + self.data[j * n + i];
                self.data[i * n + j] = s;
                self.data[j * n + i] = s;
            }
            self.data[i * n + i] *= 2.0;
        }
    }

    /// Dense mat-mul `self · other`, parallelised over row blocks when large.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Dense::zeros(self.rows, other.cols);
        let flops = self.rows * self.cols * other.cols;
        let threads = num_threads();
        if flops < PARALLEL_THRESHOLD || threads == 1 || self.rows < 2 {
            matmul_rows(&self.data, self.cols, &other.data, other.cols, &mut out.data, 0);
            return out;
        }
        let rows_per = self.rows.div_ceil(threads);
        let a_cols = self.cols;
        let b_cols = other.cols;
        let a = &self.data;
        let b = &other.data;
        std::thread::scope(|scope| {
            for (t, chunk) in out.data.chunks_mut(rows_per * b_cols).enumerate() {
                let start_row = t * rows_per;
                scope.spawn(move || {
                    let nrows = chunk.len() / b_cols;
                    let a_block = &a[start_row * a_cols..(start_row + nrows) * a_cols];
                    matmul_rows(a_block, a_cols, b, b_cols, chunk, 0);
                });
            }
        });
        out
    }

    /// `‖self‖_max = max_{i,j} |x_ij|` — the norm of Lemma 3.
    pub fn max_norm(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, &v| acc.max(v.abs()))
    }

    /// `max |self - other|` entry-wise.
    pub fn max_diff(&self, other: &Dense) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).fold(0.0, |acc, (&a, &b)| acc.max((a - b).abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Whether `|self - selfᵀ| ≤ tol` everywhere.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                if (self.data[i * n + j] - self.data[j * n + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Dense, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_diff(other) <= tol
    }

    /// Estimated resident bytes (Fig. 6(h) accounting).
    pub fn estimated_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

/// Serial row-block kernel: `out[r][:] = sum_k a[r][k] * b[k][:]`, written in
/// the saxpy-over-rows order that vectorises well and never indexes `b`
/// column-wise.
fn matmul_rows(
    a_block: &[f64],
    a_cols: usize,
    b: &[f64],
    b_cols: usize,
    out_block: &mut [f64],
    _tag: usize,
) {
    let nrows = out_block.len() / b_cols;
    for r in 0..nrows {
        let a_row = &a_block[r * a_cols..(r + 1) * a_cols];
        let out_row = &mut out_block[r * b_cols..(r + 1) * b_cols];
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[k * b_cols..(k + 1) * b_cols];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

pub(crate) fn num_threads() -> usize {
    crate::available_threads()
}

impl fmt::Debug for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dense {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            let cols = self.cols.min(8);
            let row: Vec<String> = (0..cols).map(|j| format!("{:.4}", self.get(i, j))).collect();
            writeln!(f, "  [{}{}]", row.join(", "), if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Dense::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Dense::identity(2);
        assert!(a.matmul(&i).approx_eq(&a, 0.0));
        assert!(i.matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn small_matmul_exact() {
        let a = Dense::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Dense::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn rectangular_matmul() {
        let a = Dense::from_rows(&[vec![1.0, 0.0, 2.0]]); // 1x3
        let b = Dense::from_rows(&[vec![1.0], vec![1.0], vec![10.0]]); // 3x1
        let c = a.matmul(&b);
        assert_eq!((c.rows(), c.cols()), (1, 1));
        assert_eq!(c.get(0, 0), 21.0);
    }

    #[test]
    fn parallel_matches_serial() {
        // Deterministic pseudo-random fill; big enough to trip the
        // parallel path (80*80*80 < threshold, so force by computing both
        // kernels directly).
        let n = 64;
        let mut a = Dense::zeros(n, n);
        let mut b = Dense::zeros(n, n);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, next());
                b.set(i, j, next());
            }
        }
        let mut serial = Dense::zeros(n, n);
        matmul_rows(a.as_slice(), n, b.as_slice(), n, serial.as_mut_slice(), 0);
        let via_api = a.matmul(&b);
        assert!(via_api.approx_eq(&serial, 0.0));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Dense::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert!(t.transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn add_transpose_inplace_symmetrises() {
        let mut a = Dense::from_rows(&[vec![1.0, 2.0], vec![5.0, 3.0]]);
        a.add_transpose_inplace();
        assert_eq!(a.get(0, 1), 7.0);
        assert_eq!(a.get(1, 0), 7.0);
        assert_eq!(a.get(0, 0), 2.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn norms() {
        let a = Dense::from_rows(&[vec![-3.0, 0.0], vec![1.0, 2.0]]);
        assert_eq!(a.max_norm(), 3.0);
        assert!((a.frobenius_norm() - 14.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Dense::identity(2);
        let b = Dense::identity(2);
        a.axpy(2.0, &b);
        a.scale(0.5);
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn add_diagonal() {
        let mut a = Dense::zeros(3, 3);
        a.add_diagonal(0.4);
        assert_eq!(a.get(1, 1), 0.4);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_matmul_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_vec_checks_len() {
        let m = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }
}
