//! Row-block work dispatch shared by the blocked matrix sweeps.
//!
//! Every all-pairs kernel in the workspace has the same parallel shape: an
//! output buffer of `rows × cols` f64s is split into contiguous row blocks,
//! and each block is produced independently (reading whatever shared state
//! the caller closes over). [`dispatch_row_blocks`] owns that shape once —
//! block slicing, the self-balancing work queue, the scoped-thread spawn,
//! and the serial fast path — so callers only write the per-block kernel.

/// Splits `out` (a row-major `rows × cols` buffer) into contiguous blocks of
/// `block_rows` rows and runs `f(start_row, block)` on every block, using up
/// to `threads` scoped worker threads. Generic over the cell type so both
/// score buffers (`f64`) and per-row result slots (e.g. ranked lists) can
/// be dispatched.
///
/// Blocks are handed out through a shared queue (last block first), so
/// uneven per-block cost self-balances instead of stalling on the slowest
/// pre-assigned range. With `threads <= 1`, or when there is only one
/// block, everything runs inline on the caller's thread — no spawn cost on
/// the serial path, and identical results either way (each block's output
/// depends only on its own rows).
///
/// Panics if `out.len()` is not a multiple of `cols` (for `cols > 0`).
pub fn dispatch_row_blocks<T, F>(
    out: &mut [T],
    cols: usize,
    block_rows: usize,
    threads: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if out.is_empty() {
        return;
    }
    assert!(cols > 0, "cols must be positive for a non-empty buffer");
    assert_eq!(out.len() % cols, 0, "buffer must hold whole rows");
    let block_rows = block_rows.max(1);
    let blocks: Vec<(usize, &mut [T])> = out
        .chunks_mut(block_rows * cols)
        .enumerate()
        .map(|(i, chunk)| (i * block_rows, chunk))
        .collect();
    if threads <= 1 || blocks.len() == 1 {
        for (start_row, block) in blocks {
            f(start_row, block);
        }
        return;
    }
    let workers = threads.min(blocks.len());
    let queue = std::sync::Mutex::new(blocks);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("work queue poisoned").pop();
                let Some((start_row, block)) = job else { break };
                f(start_row, block);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(rows: usize, cols: usize, block_rows: usize, threads: usize) -> Vec<f64> {
        let mut out = vec![0.0; rows * cols];
        dispatch_row_blocks(&mut out, cols, block_rows, threads, |start_row, block| {
            for (r, row) in block.chunks_mut(cols).enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = ((start_row + r) * cols + c) as f64;
                }
            }
        });
        out
    }

    #[test]
    fn covers_every_row_exactly_once() {
        let want: Vec<f64> = (0..7 * 5).map(|i| i as f64).collect();
        for threads in [1, 2, 4, 9] {
            for block_rows in [1, 2, 3, 7, 100] {
                assert_eq!(
                    fill(7, 5, block_rows, threads),
                    want,
                    "threads={threads}, block_rows={block_rows}"
                );
            }
        }
    }

    #[test]
    fn empty_buffer_is_a_noop() {
        dispatch_row_blocks::<f64, _>(&mut [], 4, 8, 4, |_, _| panic!("no blocks expected"));
    }

    #[test]
    fn zero_block_rows_is_clamped() {
        assert_eq!(fill(3, 2, 0, 2), (0..6).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn ragged_buffer_rejected() {
        dispatch_row_blocks(&mut [0.0; 5], 2, 1, 1, |_, _| {});
    }
}
