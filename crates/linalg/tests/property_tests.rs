//! Property-based tests of the linear-algebra substrate: algebraic
//! identities that must hold for arbitrary matrices, exercised with
//! proptest-generated inputs.

use proptest::prelude::*;
use ssr_linalg::{solve::solve_dense, svd::truncated_svd, Csr, Dense};

/// Strategy: a dense matrix with entries in [-1, 1].
fn arb_dense(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Dense> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1.0f64..1.0, r * c)
            .prop_map(move |data| Dense::from_vec(r, c, data))
    })
}

/// Strategy: a square dense matrix.
fn arb_square(max_n: usize) -> impl Strategy<Value = Dense> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n)
            .prop_map(move |data| Dense::from_vec(n, n, data))
    })
}

/// Strategy: a sparse matrix from random triplets.
fn arb_csr(max_n: usize) -> impl Strategy<Value = Csr> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, -1.0f64..1.0), 0..(3 * n))
            .prop_map(move |t| Csr::from_triplets(n, n, &t))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (Aᵀ)ᵀ = A.
    #[test]
    fn transpose_involution(a in arb_dense(12, 12)) {
        prop_assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ (dimensions drawn jointly so the product is defined).
    #[test]
    fn matmul_transpose_identity(
        (a, b) in (1usize..=7, 1usize..=7, 1usize..=7).prop_flat_map(|(r, k, c)| {
            (
                proptest::collection::vec(-1.0f64..1.0, r * k)
                    .prop_map(move |d| Dense::from_vec(r, k, d)),
                proptest::collection::vec(-1.0f64..1.0, k * c)
                    .prop_map(move |d| Dense::from_vec(k, c, d)),
            )
        })
    ) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    /// A·I = I·A = A.
    #[test]
    fn identity_neutral(a in arb_square(10)) {
        let i = Dense::identity(a.rows());
        prop_assert!(a.matmul(&i).approx_eq(&a, 0.0));
        prop_assert!(i.matmul(&a).approx_eq(&a, 0.0));
    }

    /// Max-norm triangle inequality under addition.
    #[test]
    fn max_norm_triangle(a in arb_square(10), s in -2.0f64..2.0) {
        let mut b = a.clone();
        b.scale(s);
        prop_assert!((b.max_norm() - s.abs() * a.max_norm()).abs() < 1e-10);
    }

    /// Sparse mat-mul agrees with densified mat-mul.
    #[test]
    fn csr_mul_dense_agrees(m in arb_csr(10)) {
        let x = Dense::identity(m.cols());
        let via_sparse = m.mul_dense(&x);
        prop_assert!(via_sparse.approx_eq(&m.to_dense(), 1e-12));
    }

    /// Sparse transpose agrees with dense transpose.
    #[test]
    fn csr_transpose_agrees(m in arb_csr(10)) {
        prop_assert!(m.transpose().to_dense().approx_eq(&m.to_dense().transpose(), 0.0));
    }

    /// mul_vec is the first column of mul_dense on a basis vector.
    #[test]
    fn csr_mul_vec_agrees(m in arb_csr(8)) {
        let n = m.cols();
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let y = m.mul_vec(&e);
            let dense = m.to_dense();
            for (i, &yi) in y.iter().enumerate() {
                prop_assert!((yi - dense.get(i, j)).abs() < 1e-12);
            }
        }
    }

    /// vec_mul is mul_vec on the transpose.
    #[test]
    fn csr_vec_mul_is_transposed_mul_vec(m in arb_csr(8), seed in 0u64..1000) {
        let n = m.rows();
        let x: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 7) as f64 - 3.0).collect();
        let a = m.vec_mul(&x);
        let b = m.transpose().mul_vec(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    /// Gaussian elimination: A·x = b round-trips for well-conditioned A
    /// (diagonally dominated by construction).
    #[test]
    fn solve_round_trip(a in arb_square(8), bvec in proptest::collection::vec(-1.0f64..1.0, 8)) {
        let n = a.rows();
        let mut m = a.clone();
        // Force diagonal dominance so the system is well-conditioned.
        for i in 0..n {
            m.add_to(i, i, 4.0);
        }
        let b = &bvec[..n];
        let x = solve_dense(&m, b).expect("diagonally dominant is non-singular");
        // Check A·x = b.
        for (i, &bi) in b.iter().enumerate() {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                acc += m.get(i, j) * xj;
            }
            prop_assert!((acc - bi).abs() < 1e-8, "row {}: {} vs {}", i, acc, bi);
        }
    }

    /// Truncated SVD at full rank reconstructs the matrix.
    #[test]
    fn svd_full_rank_reconstructs(m in arb_csr(7)) {
        let n = m.rows();
        let svd = truncated_svd(&m, n, 40, 99);
        let mut recon = Dense::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..svd.sigma.len() {
                    acc += svd.u.get(i, k) * svd.sigma[k] * svd.v.get(j, k);
                }
                recon.set(i, j, acc);
            }
        }
        prop_assert!(
            m.to_dense().max_diff(&recon) < 1e-6,
            "reconstruction error {}",
            m.to_dense().max_diff(&recon)
        );
    }

    /// Singular values are non-negative and descending.
    #[test]
    fn svd_sigma_sorted(m in arb_csr(8)) {
        let svd = truncated_svd(&m, 5, 25, 7);
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }
}
