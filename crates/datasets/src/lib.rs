//! # ssr-datasets — scaled synthetic stand-ins for the paper's datasets
//!
//! The paper's Figure 5 datasets (SNAP + DBLP dumps) are unavailable
//! offline. Each stand-in is generated deterministically at the *same
//! density* (`|E|/|V|`) as the original, with the node count divided by a
//! configurable scale factor so the all-pairs algorithms fit a laptop
//! (DESIGN.md §4 argues why density + degree skew + DAG-ness/undirectedness
//! are the operative properties).
//!
//! | Paper dataset | `|V|`, `|E|`, density (Fig. 5) | Stand-in generator |
//! |---|---|---|
//! | CitHepTh | 33K, 418K, 12.6 | preferential-attachment citation DAG |
//! | DBLP | 15K, 87K, 5.8 | planted-community co-authorship |
//! | D05 / D08 / D11 | 4K/17K · 13K/72K · 14K/89K | planted-community co-authorship |
//! | Web-Google | 873K, 4.9M, 5.6 | R-MAT |
//! | CitPatent | 3.6M, 16.2M, 4.5 | preferential-attachment citation DAG |
//!
//! Every dataset carries a *role* vector (the paper's #citations / H-index
//! proxy used in Figures 6(b)/(c)) and, for co-authorship graphs, the
//! planted community structure used as ranking ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ssr_gen::citation::{citation_graph, CitationParams};
use ssr_gen::community::{community_graph, CommunityGraph, CommunityParams};
use ssr_graph::{stats::graph_stats, DiGraph};

/// Identifiers of the paper's seven datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// arXiv HEP-TH citation network (directed DAG-like).
    CitHepTh,
    /// DBLP 2002–2007 co-authorship graph (undirected).
    Dblp,
    /// DBLP 2003–2005 slice.
    D05,
    /// DBLP 2003–2008 slice.
    D08,
    /// DBLP 2003–2011 slice.
    D11,
    /// Google web graph (directed, heavy-tailed).
    WebGoogle,
    /// US patent citation network (directed DAG).
    CitPatent,
}

impl DatasetId {
    /// All seven, in the paper's Figure 5 order.
    pub const ALL: [DatasetId; 7] = [
        DatasetId::CitHepTh,
        DatasetId::Dblp,
        DatasetId::D05,
        DatasetId::D08,
        DatasetId::D11,
        DatasetId::WebGoogle,
        DatasetId::CitPatent,
    ];

    /// The paper's name for the dataset.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::CitHepTh => "CitHepTh",
            DatasetId::Dblp => "DBLP",
            DatasetId::D05 => "D05",
            DatasetId::D08 => "D08",
            DatasetId::D11 => "D11",
            DatasetId::WebGoogle => "Web-Google",
            DatasetId::CitPatent => "CitPatent",
        }
    }

    /// `(|V|, |E|)` as reported in Figure 5.
    pub fn paper_size(self) -> (usize, usize) {
        match self {
            DatasetId::CitHepTh => (33_000, 418_000),
            DatasetId::Dblp => (15_000, 87_000),
            DatasetId::D05 => (4_000, 17_000),
            DatasetId::D08 => (13_000, 72_000),
            DatasetId::D11 => (14_000, 89_000),
            DatasetId::WebGoogle => (873_000, 4_900_000),
            DatasetId::CitPatent => (3_600_000, 16_200_000),
        }
    }

    /// Density `|E|/|V|` from Figure 5.
    pub fn paper_density(self) -> f64 {
        let (n, m) = self.paper_size();
        m as f64 / n as f64
    }

    /// What family of generator models this dataset.
    pub fn kind(self) -> DatasetKind {
        match self {
            DatasetId::CitHepTh | DatasetId::CitPatent => DatasetKind::Citation,
            DatasetId::Dblp | DatasetId::D05 | DatasetId::D08 | DatasetId::D11 => {
                DatasetKind::CoAuthorship
            }
            DatasetId::WebGoogle => DatasetKind::Web,
        }
    }
}

/// Structural family of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Directed, (near-)acyclic, heavy-tailed in-degree.
    Citation,
    /// Undirected, clique-rich, community-structured.
    CoAuthorship,
    /// Directed, cyclic, heavy-tailed both ways.
    Web,
}

/// A loaded dataset: graph + role metadata (+ planted truth when available).
pub struct Dataset {
    /// Which paper dataset this stands in for.
    pub id: DatasetId,
    /// The generated graph.
    pub graph: DiGraph,
    /// Role proxy per node (#citations for citation/web graphs, H-index for
    /// co-authorship graphs) — the Fig. 6(b)/(c) grouping signal.
    pub roles: Vec<f64>,
    /// Planted community structure (co-authorship stand-ins only); carries
    /// the generator-known ground truth for ranking quality.
    pub community: Option<CommunityGraph>,
    /// The scale divisor the dataset was generated at.
    pub scale_divisor: usize,
}

impl Dataset {
    /// One Figure 5 row for this dataset: paper-reported vs generated
    /// `(|V|, |E|, density)`.
    pub fn figure5_row(&self) -> String {
        let (pn, pm) = self.id.paper_size();
        let s = graph_stats(&self.graph);
        format!(
            "{:<11} paper: |V|={:>8} |E|={:>9} d={:>5.1} | stand-in (/{}): |V|={:>7} |E|={:>8} d={:>5.1}",
            self.id.name(),
            pn,
            pm,
            self.id.paper_density(),
            self.scale_divisor,
            s.nodes,
            s.edges,
            s.density,
        )
    }
}

/// Loads a dataset scaled down by `divisor` (node count divided by it,
/// density preserved). `divisor = 1` reproduces paper-scale sizes — only
/// sensible for the smaller DBLP slices.
///
/// If the `SSR_DATASET_CACHE` environment variable names a directory, a
/// cached `.ssg` store written by [`write_cache`] is used instead of
/// regenerating (see [`load_with_cache`] for what is and isn't cacheable).
pub fn load(id: DatasetId, divisor: usize) -> Dataset {
    let cache_dir = std::env::var_os("SSR_DATASET_CACHE").map(std::path::PathBuf::from);
    load_with_cache(id, divisor, cache_dir.as_deref())
}

/// [`load`] with an explicit cache directory.
///
/// Citation and web datasets load their graph from a matching cached
/// `.ssg` (metadata must agree on dataset name, divisor, and the
/// [`GENERATOR_REV`]+seed fingerprint, so caches from older generator
/// revisions are treated as misses) — the roles
/// vector is the in-degree, recomputable from the graph, so the cached
/// dataset is identical to the generated one. Co-authorship datasets
/// always regenerate: their planted community ground truth lives in the
/// generator, not in the graph, and a graph-only cache would silently
/// drop it. Any unreadable or mismatched cache file falls back to
/// generation (the cache is an accelerator, never a correctness risk).
pub fn load_with_cache(
    id: DatasetId,
    divisor: usize,
    cache_dir: Option<&std::path::Path>,
) -> Dataset {
    if let Some(dir) = cache_dir {
        if id.kind() != DatasetKind::CoAuthorship {
            if let Some(graph) = try_load_cached(id, divisor, dir) {
                let roles = graph.nodes().map(|v| graph.in_degree(v) as f64).collect();
                return Dataset { id, graph, roles, community: None, scale_divisor: divisor };
            }
        }
    }
    generate(id, divisor)
}

/// The conventional cache location for one `(dataset, divisor)` pair.
pub fn cache_path(dir: &std::path::Path, id: DatasetId, divisor: usize) -> std::path::PathBuf {
    dir.join(format!("{}-div{divisor}.ssg", id.name()))
}

/// Generator revision stamped into (and required of) every cache file.
/// **Bump this whenever any generator in `ssr-gen` or the seed formula
/// below changes** — name+divisor alone cannot tell a stale cache from a
/// fresh one, and a stale graph silently substituted under unchanged
/// metadata would detach results from the code that claims to produce
/// them.
pub const GENERATOR_REV: &str = "gen1";

/// The deterministic seed [`load`] generates a `(dataset, divisor)` pair
/// with (also part of the cache fingerprint).
fn generation_seed(id: DatasetId, divisor: usize) -> u64 {
    0xD5EA_5E00 ^ (id as u64) << 8 ^ divisor as u64
}

/// The full fingerprint a cache file must carry to be trusted.
fn cache_fingerprint(id: DatasetId, divisor: usize) -> String {
    format!("{GENERATOR_REV}/seed={:#x}", generation_seed(id, divisor))
}

/// Writes a dataset's graph to its cache location, stamping the metadata
/// [`load_with_cache`] checks. Returns the written path.
pub fn write_cache(
    d: &Dataset,
    dir: &std::path::Path,
) -> Result<std::path::PathBuf, ssr_store::StoreError> {
    std::fs::create_dir_all(dir).map_err(|e| ssr_store::StoreError::Io(e.to_string()))?;
    let path = cache_path(dir, d.id, d.scale_divisor);
    ssr_store::StoreWriter::new(&d.graph)
        .meta(ssr_store::meta_keys::DATASET, d.id.name())
        .meta(ssr_store::meta_keys::DIVISOR, d.scale_divisor.to_string())
        .meta(ssr_store::meta_keys::BUILD, cache_fingerprint(d.id, d.scale_divisor))
        .write_file(&path)?;
    Ok(path)
}

/// Loads the cached graph when present and its metadata matches; `None`
/// (⇒ regenerate) on any miss, mismatch, or corruption.
fn try_load_cached(
    id: DatasetId,
    divisor: usize,
    dir: &std::path::Path,
) -> Option<ssr_graph::DiGraph> {
    let path = cache_path(dir, id, divisor);
    let mut reader = ssr_store::StoreReader::open(&path).ok()?;
    let matches = reader.meta(ssr_store::meta_keys::DATASET) == Some(id.name())
        && reader.meta(ssr_store::meta_keys::DIVISOR) == Some(divisor.to_string().as_str())
        && reader.meta(ssr_store::meta_keys::BUILD)
            == Some(cache_fingerprint(id, divisor).as_str());
    if !matches {
        return None;
    }
    reader.load_full().ok()
}

/// Deterministic generation (the pre-cache body of [`load`]).
fn generate(id: DatasetId, divisor: usize) -> Dataset {
    assert!(divisor >= 1, "divisor must be >= 1");
    let (pn, pm) = id.paper_size();
    let n = (pn / divisor).max(64);
    let m = (pm / divisor).max(4 * n);
    let density = id.paper_density();
    let seed = generation_seed(id, divisor);
    match id.kind() {
        DatasetKind::Citation => {
            let g = citation_graph(
                CitationParams {
                    nodes: n,
                    avg_out_degree: density,
                    preferential_prob: 0.6,
                    recency_window: (n / 5).max(50),
                    template_prob: 0.35,
                },
                seed,
            );
            let roles = g.nodes().map(|v| g.in_degree(v) as f64).collect();
            Dataset { id, graph: g, roles, community: None, scale_divisor: divisor }
        }
        DatasetKind::CoAuthorship => {
            // A paper with 2..=4 authors yields ~6 directed edges before
            // clique overlap, and dropping paperless authors shrinks the
            // node count — so the achieved density is hard to predict in
            // closed form. Calibrate with one deterministic probe pass:
            // generate, measure the kept-subgraph density, rescale the
            // paper count toward the Figure 5 target, regenerate.
            let gen_with = |papers: usize| {
                let cg = community_graph(
                    CommunityParams {
                        nodes: n,
                        communities: (n / 40).max(4),
                        papers,
                        max_authors: 4,
                        crossover_prob: 0.15,
                    },
                    seed,
                );
                // Real DBLP has no isolated authors (every node comes from
                // at least one publication); drop the generator's paperless
                // nodes and renumber the planted metadata accordingly.
                drop_isolated_authors(cg)
            };
            let probe_papers = (m / 6).max(8);
            let probe = gen_with(probe_papers);
            let d0 = probe.graph.edge_count() as f64 / probe.graph.node_count().max(1) as f64;
            let calibrated =
                ((probe_papers as f64) * density / d0.max(0.1)).round().max(8.0) as usize;
            let cg = gen_with(calibrated);
            let n2 = cg.graph.node_count();
            let roles = (0..n2 as u32).map(|v| cg.h_index(v) as f64).collect();
            Dataset {
                id,
                graph: cg.graph.clone(),
                roles,
                community: Some(cg),
                scale_divisor: divisor,
            }
        }
        DatasetKind::Web => {
            let scale = usize::BITS - (n - 1).leading_zeros(); // ceil log2
                                                               // Half the edge budget goes to boilerplate blocks — see
                                                               // `ssr_gen::random::webgraph` for why real web graphs need this.
            let g = ssr_gen::random::webgraph(scale, m, 0.5, seed);
            let roles = g.nodes().map(|v| g.in_degree(v) as f64).collect();
            Dataset { id, graph: g, roles, community: None, scale_divisor: divisor }
        }
    }
}

/// Removes nodes with no co-authorship edges, renumbering the community
/// metadata, paper lists and paper counts consistently.
fn drop_isolated_authors(cg: CommunityGraph) -> CommunityGraph {
    let g = &cg.graph;
    let keep: Vec<u32> = g.nodes().filter(|&v| g.in_degree(v) + g.out_degree(v) > 0).collect();
    if keep.len() == g.node_count() {
        return cg;
    }
    let (sub, remap) = g.induced_subgraph(&keep);
    let community = keep.iter().map(|&v| cg.community[v as usize]).collect();
    let paper_count = keep.iter().map(|&v| cg.paper_count[v as usize]).collect();
    let papers = cg
        .papers
        .iter()
        .map(|p| {
            let mut q: Vec<u32> = p.iter().filter_map(|&v| remap[v as usize]).collect();
            q.sort_unstable();
            q
        })
        .filter(|p| !p.is_empty())
        .collect();
    CommunityGraph { graph: sub, community, paper_count, papers }
}

/// The default scale used by the experiment harness: small enough for
/// all-pairs dense similarity on a laptop, large enough to show the
/// asymptotic trends. Chosen per dataset (bigger originals shrink more).
pub fn default_divisor(id: DatasetId) -> usize {
    match id {
        DatasetId::CitHepTh => 16,
        DatasetId::Dblp => 8,
        DatasetId::D05 => 2,
        DatasetId::D08 => 6,
        DatasetId::D11 => 7,
        DatasetId::WebGoogle => 256,
        DatasetId::CitPatent => 1024,
    }
}

/// Loads a dataset at its default experiment scale.
pub fn load_default(id: DatasetId) -> Dataset {
    load(id, default_divisor(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn citation_standins_are_dags() {
        let d = load(DatasetId::CitHepTh, 64);
        assert!(d.graph.edges().all(|(u, v)| u > v));
        assert!(d.community.is_none());
    }

    #[test]
    fn coauthor_standins_are_undirected_with_truth() {
        let d = load(DatasetId::D05, 4);
        assert!(d.graph.is_symmetric());
        assert!(d.community.is_some());
        assert_eq!(d.roles.len(), d.graph.node_count());
    }

    #[test]
    fn densities_roughly_match_paper() {
        for id in [DatasetId::CitHepTh, DatasetId::D08, DatasetId::WebGoogle] {
            let d = load(id, 64);
            let s = graph_stats(&d.graph);
            let target = id.paper_density();
            // Within a factor of 2.5 either way (generators are stochastic
            // and co-author graphs count both directions).
            assert!(
                s.density > target / 2.5 && s.density < target * 2.5,
                "{}: density {} vs target {target}",
                id.name(),
                s.density
            );
        }
    }

    #[test]
    fn deterministic_per_divisor() {
        let a = load(DatasetId::D05, 8);
        let b = load(DatasetId::D05, 8);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.roles, b.roles);
    }

    #[test]
    fn scaling_shrinks_nodes() {
        let big = load(DatasetId::CitHepTh, 16);
        let small = load(DatasetId::CitHepTh, 64);
        assert!(big.graph.node_count() > small.graph.node_count());
    }

    #[test]
    fn roles_nonnegative_and_sized() {
        for id in DatasetId::ALL {
            let d = load(id, 512);
            assert_eq!(d.roles.len(), d.graph.node_count());
            assert!(d.roles.iter().all(|&r| r >= 0.0));
        }
    }

    #[test]
    fn cached_store_load_matches_generation() {
        let dir = std::env::temp_dir()
            .join("ssr_datasets_cache_test")
            .join(std::process::id().to_string());
        let generated = load(DatasetId::CitHepTh, 64);
        let path = write_cache(&generated, &dir).unwrap();
        assert!(path.exists());
        let cached = load_with_cache(DatasetId::CitHepTh, 64, Some(&dir));
        assert_eq!(cached.graph, generated.graph);
        assert_eq!(cached.roles, generated.roles);
        assert_eq!(cached.scale_divisor, 64);
        // A different divisor misses the cache (file name + metadata).
        let other = load_with_cache(DatasetId::CitHepTh, 128, Some(&dir));
        assert!(other.graph.node_count() != generated.graph.node_count());
        // A cache from a different generator revision is a miss, not a
        // silent substitution: plant a *wrong* graph at the right path
        // with the right name+divisor but a stale fingerprint — the
        // loader must regenerate rather than serve it.
        let wrong = load(DatasetId::CitHepTh, 128);
        ssr_store::StoreWriter::new(&wrong.graph)
            .meta(ssr_store::meta_keys::DATASET, "CitHepTh")
            .meta(ssr_store::meta_keys::DIVISOR, "64")
            .meta(ssr_store::meta_keys::BUILD, "gen0/seed=0x0")
            .write_file(&path)
            .unwrap();
        let stale = load_with_cache(DatasetId::CitHepTh, 64, Some(&dir));
        assert_eq!(stale.graph, generated.graph, "stale fingerprint must regenerate");
        // Corrupt cache falls back to generation instead of failing.
        write_cache(&generated, &dir).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let fallback = load_with_cache(DatasetId::CitHepTh, 64, Some(&dir));
        assert_eq!(fallback.graph, generated.graph);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coauthorship_keeps_planted_truth_despite_cache() {
        let dir = std::env::temp_dir()
            .join("ssr_datasets_cache_test_coauthor")
            .join(std::process::id().to_string());
        let generated = load(DatasetId::D05, 8);
        write_cache(&generated, &dir).unwrap();
        // Community datasets regenerate: ground truth must survive.
        let loaded = load_with_cache(DatasetId::D05, 8, Some(&dir));
        assert!(loaded.community.is_some());
        assert_eq!(loaded.graph, generated.graph);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn figure5_row_formats() {
        let d = load(DatasetId::Dblp, 64);
        let row = d.figure5_row();
        assert!(row.contains("DBLP"));
        assert!(row.contains("paper:"));
    }
}
