//! Property-based equivalence tests across crates: on arbitrary random
//! graphs, every fast path must agree with its reference form, and the
//! paper's theorems must hold numerically.

use proptest::prelude::*;
use simrank_star::{exponential, geometric, series, SimStarParams};
use ssr_compress::{compress_with_bicliques, CompressOptions};
use ssr_graph::paths::ZeroSimRankOracle;
use ssr_graph::DiGraph;

/// Strategy: a random digraph with up to `max_n` nodes and a density knob.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2usize..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m).prop_map(
            move |mut edges| {
                edges.retain(|(u, v)| u != v);
                DiGraph::from_edges(n, &edges).expect("in-range edges")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 4: the geometric recurrence equals the literal series at every
    /// truncation.
    #[test]
    fn geometric_recurrence_equals_series(g in arb_graph(9, 24), k in 0usize..5) {
        let p = SimStarParams { c: 0.65, iterations: k };
        let fast = geometric::iterate(&g, &p);
        let brute = series::geometric_partial_sum(&g, &p);
        prop_assert!(fast.matrix().approx_eq(&brute, 1e-9));
    }

    /// Algorithm 1: memoized and plain geometric SimRank* agree exactly.
    #[test]
    fn memo_equals_iter(g in arb_graph(16, 60), k in 1usize..7) {
        let p = SimStarParams { c: 0.6, iterations: k };
        let plain = geometric::iterate(&g, &p);
        let memo = geometric::iterate_memo(&g, &p, &CompressOptions::default());
        prop_assert!(plain.matrix().approx_eq(memo.matrix(), 1e-11));
    }

    /// memo-eSR* equals eSR*.
    #[test]
    fn memo_exponential_equals_plain(g in arb_graph(14, 50), k in 1usize..7) {
        let p = SimStarParams { c: 0.6, iterations: k };
        let plain = exponential::closed_form(&g, &p);
        let memo = exponential::closed_form_memo(&g, &p, &CompressOptions::default());
        prop_assert!(plain.matrix().approx_eq(memo.matrix(), 1e-11));
    }

    /// Output invariants: symmetry, range [0, 1], diagonal dominance of rows.
    #[test]
    fn simrank_star_invariants(g in arb_graph(14, 60)) {
        let s = geometric::iterate(&g, &SimStarParams { c: 0.8, iterations: 8 });
        prop_assert!(s.matrix().is_symmetric(1e-10));
        prop_assert!(s.max_norm() <= 1.0 + 1e-9);
        for i in 0..g.node_count() as u32 {
            for j in 0..g.node_count() as u32 {
                prop_assert!(s.score(i, j) >= -1e-15);
                prop_assert!(s.score(i, i) >= s.score(i, j) - 1e-12);
            }
        }
    }

    /// Lemma 3: the distance between consecutive deep iterates obeys the
    /// geometric tail bound.
    #[test]
    fn convergence_bound_holds(g in arb_graph(10, 40)) {
        let c = 0.7;
        let deep = geometric::iterate(&g, &SimStarParams { c, iterations: 40 });
        for k in [0usize, 2, 4, 6] {
            let sk = geometric::iterate(&g, &SimStarParams { c, iterations: k });
            let gap = deep.max_diff(&sk);
            prop_assert!(
                gap <= simrank_star::convergence::geometric_bound(c, k) + 1e-9,
                "k={k}: gap {gap}"
            );
        }
    }

    /// Compression round-trip: the compressed graph reproduces every
    /// in-neighbor set exactly, and never has more edges than the original.
    #[test]
    fn compression_roundtrip(g in arb_graph(24, 140)) {
        let (cg, bicliques) = compress_with_bicliques(&g, &CompressOptions::default());
        for v in g.nodes() {
            prop_assert_eq!(cg.decompress_in_neighbors(v), g.in_neighbors(v).to_vec());
        }
        prop_assert!(cg.compressed_edge_count() <= g.edge_count());
        // Every mined biclique is genuine: tops ⊆ I(y) for all bottoms y.
        for b in &bicliques {
            for &y in &b.bottoms {
                for &t in &b.tops {
                    prop_assert!(g.in_neighbors(y).binary_search(&t).is_ok());
                }
            }
        }
    }

    /// Theorem 1, both directions, via the exact pair-graph oracle:
    /// SimRank(a,b) > 0 ⟺ a symmetric in-link path exists.
    #[test]
    fn theorem1_zero_simrank(g in arb_graph(9, 22)) {
        let oracle = ZeroSimRankOracle::build(&g);
        let s = ssr_baselines::simrank::simrank(&g, 0.8, 2 * g.node_count());
        for a in 0..g.node_count() as u32 {
            for b in 0..g.node_count() as u32 {
                if a == b { continue; }
                if oracle.is_nonzero(a, b) {
                    prop_assert!(s.score(a, b) > 0.0, "({a},{b}) should be > 0");
                } else {
                    prop_assert_eq!(s.score(a, b), 0.0, "({},{}) should be 0", a, b);
                }
            }
        }
    }

    /// SimRank* dominates SimRank's support: wherever SimRank is non-zero,
    /// SimRank* is too (it aggregates a superset of in-link paths).
    #[test]
    fn star_support_superset(g in arb_graph(10, 30)) {
        let k = 2 * g.node_count();
        let sr = ssr_baselines::simrank::simrank(&g, 0.8, k);
        let star = geometric::iterate(&g, &SimStarParams { c: 0.8, iterations: k });
        for a in 0..g.node_count() as u32 {
            for b in 0..g.node_count() as u32 {
                if sr.score(a, b) > 1e-12 {
                    prop_assert!(star.score(a, b) > 0.0, "({a},{b})");
                }
            }
        }
    }
}
