//! Integration test pinning the paper's Figure 1 table: the similarity
//! scores of SimRank, P-Rank, SimRank\* and RWR on the 11-node citation
//! graph at `C = 0.8`.

use simrank_star::{exponential, geometric, SimStarParams};
use ssr_baselines::{prank::prank_default, rwr::rwr_matrix, simrank::simrank};
use ssr_gen::fixtures::{fig1::*, figure1_graph};

const DAMP: f64 = 0.8;
const K: usize = 25; // deep enough that 3-decimal values are converged

#[test]
fn simrank_star_column_matches_paper() {
    let g = figure1_graph();
    let s = geometric::iterate(&g, &SimStarParams::new(DAMP, K));
    // Column SR* of Figure 1 (±0.002 for the paper's 3-decimal rounding +
    // its unknown iteration count).
    let expected = [
        ((H, D), 0.010),
        ((A, F), 0.032),
        ((A, C), 0.025),
        ((G, A), 0.025),
        ((G, B), 0.075),
        ((I, A), 0.015),
        ((I, H), 0.031),
    ];
    for ((a, b), want) in expected {
        let got = s.score(a, b);
        assert!((got - want).abs() <= 0.002, "SR*({a},{b}) = {got:.4}, paper reports {want}");
    }
}

#[test]
fn simrank_column_matches_paper() {
    let g = figure1_graph();
    let s = simrank(&g, DAMP, K);
    for (a, b) in [(H, D), (A, F), (A, C), (G, A), (G, B), (I, A)] {
        assert_eq!(s.score(a, b), 0.0, "SR({a},{b}) must be exactly 0");
    }
    assert!((s.score(I, H) - 0.044).abs() <= 0.002, "SR(i,h) = {}", s.score(I, H));
}

#[test]
fn prank_column_matches_paper() {
    let g = figure1_graph();
    let s = prank_default(&g, DAMP, K);
    assert!((s.score(H, D) - 0.049).abs() <= 0.004, "PR(h,d) = {}", s.score(H, D));
    assert!((s.score(A, F) - 0.075).abs() <= 0.004, "PR(a,f) = {}", s.score(A, F));
    assert!((s.score(I, H) - 0.041).abs() <= 0.004, "PR(i,h) = {}", s.score(I, H));
    // The table prints 3 decimals: "0" entries may be small-but-positive
    // through deep out-link recursion (e.g. PR(g,b) ≈ 0.0002). Require that
    // they round to .000.
    for (a, b) in [(A, C), (G, A), (G, B), (I, A)] {
        assert!(s.score(a, b) < 0.0005, "PR({a},{b}) = {} should round to .000", s.score(a, b));
    }
    // PR(g,a) is exactly zero: a has no in-links and g no out-links.
    assert_eq!(s.score(G, A), 0.0);
}

#[test]
fn rwr_column_zero_pattern_matches_paper() {
    let g = figure1_graph();
    let s = rwr_matrix(&g, DAMP, 2 * K);
    // RWR zeros: (h,d), (g,a), (g,b), (i,a), (i,h).
    for (a, b) in [(H, D), (G, A), (G, B), (I, A), (I, H)] {
        assert_eq!(s.score(a, b), 0.0, "RWR({a},{b}) must be 0");
    }
    // RWR non-zeros: (a,f), (a,c).
    assert!(s.score(A, F) > 0.0);
    assert!(s.score(A, C) > 0.0);
}

#[test]
fn exponential_variant_preserves_relative_order() {
    // Fig 6(a) claim: "the relative order of the geometric SimRank* is well
    // maintained by its exponential counterpart" — check pairwise order
    // agreement across the table's pairs.
    let g = figure1_graph();
    let geo = geometric::iterate(&g, &SimStarParams::new(DAMP, K));
    let exp = exponential::closed_form(&g, &SimStarParams::new(DAMP, K));
    let pairs = [(H, D), (A, F), (A, C), (G, A), (G, B), (I, A), (I, H)];
    for i in 0..pairs.len() {
        for j in (i + 1)..pairs.len() {
            let (a1, b1) = pairs[i];
            let (a2, b2) = pairs[j];
            let dg = geo.score(a1, b1) - geo.score(a2, b2);
            let de = exp.score(a1, b1) - exp.score(a2, b2);
            if dg.abs() > 5e-3 {
                assert!(
                    dg.signum() == de.signum(),
                    "order flip between ({a1},{b1}) and ({a2},{b2}): geo {dg}, exp {de}"
                );
            }
        }
    }
}

#[test]
fn example1_walkthrough_holds() {
    // Example 1 prose: s(h,d) = 0 because the in-link source `a` is not
    // path-centered; s(a,g) = 0 because a has no in-neighbors; s(g,i) > 0
    // via the centered sources b and d.
    let g = figure1_graph();
    let s = simrank(&g, DAMP, K);
    assert_eq!(s.score(H, D), 0.0);
    assert_eq!(s.score(A, G), 0.0);
    assert!(s.score(G, I) > 0.0);
}

#[test]
fn all_measures_agree_on_symmetry_except_rwr() {
    let g = figure1_graph();
    let star = geometric::iterate(&g, &SimStarParams::new(DAMP, 10));
    let sr = simrank(&g, DAMP, 10);
    let pr = prank_default(&g, DAMP, 10);
    let rwr = rwr_matrix(&g, DAMP, 10);
    assert!(star.matrix().is_symmetric(1e-12));
    assert!(sr.matrix().is_symmetric(1e-12));
    assert!(pr.matrix().is_symmetric(1e-12));
    assert!(!rwr.matrix().is_symmetric(1e-12), "RWR is directional by design");
}
