//! Smoke test: run `examples/quickstart.rs` end-to-end as a subprocess, the
//! way a user would, so CI exercises the public API surface (graph fixture →
//! SimRank\* scores → the example's own sanity assertions) and catches
//! example bitrot that unit tests cannot see.

use std::process::Command;

#[test]
fn quickstart_example_runs_end_to_end() {
    // `cargo run --example` re-enters the build graph with the same cargo
    // binary and an inherited environment, so an externally configured
    // CARGO_TARGET_DIR (CI caches, shared build dirs) keeps pointing at the
    // outer invocation's artifacts and nothing is rebuilt from scratch.
    let cargo = env!("CARGO");
    let out = Command::new(cargo)
        .args(["run", "--quiet", "--example", "quickstart"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn cargo run --example quickstart");

    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "quickstart exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        stdout,
        stderr
    );

    // The example prints the Figure 1 walk-through; spot-check the pieces a
    // reader relies on. The 11-node/18-edge shape and the zero-SimRank
    // headline line both come from assertions inside the example itself, so
    // their presence means the whole pipeline ran.
    assert!(
        stdout.contains("Figure 1 graph: 11 nodes, 18 edges"),
        "unexpected graph banner:\n{stdout}"
    );
    assert!(stdout.contains("Top-3 most similar papers"), "missing top-k section:\n{stdout}");
    assert!(stdout.contains("more is simpler"), "missing zero-SimRank headline:\n{stdout}");
}
