//! Guards on the dataset stand-ins' structural claims (DESIGN.md §4): each
//! substitution argument rests on specific graph properties — if a generator
//! change breaks one, the experiments silently stop testing what they claim
//! to test. These tests make that breakage loud.

use ssr_datasets::{load, DatasetId};
use ssr_graph::components::strongly_connected_components;
use ssr_graph::stats::graph_stats;

#[test]
fn citation_standins_are_dags_with_skewed_indegree() {
    for id in [DatasetId::CitHepTh, DatasetId::CitPatent] {
        let d = load(id, 64);
        let g = &d.graph;
        // DAG: all SCCs singletons.
        let scc = strongly_connected_components(g);
        assert_eq!(scc.count, g.node_count(), "{} must be acyclic", id.name());
        // Heavy-tailed in-degree: hub ≫ mean.
        let s = graph_stats(g);
        assert!(
            s.max_in_degree as f64 > 5.0 * s.density,
            "{}: max_in {} vs mean {}",
            id.name(),
            s.max_in_degree,
            s.density
        );
    }
}

#[test]
fn web_standin_is_cyclic_and_compressible() {
    let d = load(DatasetId::WebGoogle, 512);
    let g = &d.graph;
    let scc = strongly_connected_components(g);
    assert!(scc.count < g.node_count(), "web graphs have cycles");
    // Boilerplate blocks must make it strongly compressible — the operative
    // property behind the Fig. 6(e)/(f) memo results.
    let cg = ssr_compress::compress(g, &ssr_compress::CompressOptions::default());
    assert!(
        cg.compression_ratio() > 0.25,
        "web stand-in compresses only {:.1}%",
        100.0 * cg.compression_ratio()
    );
}

#[test]
fn coauthor_standins_undirected_no_isolated_with_truth() {
    for id in [DatasetId::Dblp, DatasetId::D05, DatasetId::D08, DatasetId::D11] {
        let d = load(id, 16);
        let g = &d.graph;
        assert!(g.is_symmetric(), "{} must be undirected", id.name());
        let s = graph_stats(g);
        assert_eq!(s.isolated, 0, "{} must have no isolated authors", id.name());
        let cg = d.community.as_ref().expect("planted truth present");
        assert_eq!(cg.community.len(), g.node_count());
        assert_eq!(cg.paper_count.len(), g.node_count());
        // Every paper's author list references valid nodes.
        for p in &cg.papers {
            for &a in p {
                assert!((a as usize) < g.node_count());
            }
        }
    }
}

#[test]
fn densities_track_figure5_targets() {
    for id in DatasetId::ALL {
        let d = load(id, 64);
        let s = graph_stats(&d.graph);
        let target = id.paper_density();
        assert!(
            s.density > target / 2.0 && s.density < target * 2.0,
            "{}: density {:.2} vs Figure 5 target {:.2}",
            id.name(),
            s.density,
            target
        );
    }
}

#[test]
fn default_scales_fit_dense_similarity() {
    // The all-pairs experiments hold up to 3 dense n² matrices; keep every
    // default-scale stand-in under ~440MB of peak similarity state.
    for id in DatasetId::ALL {
        let d = ssr_datasets::load_default(id);
        let n = d.graph.node_count();
        assert!(3 * n * n * 8 < 450_000_000, "{} default scale too large: n = {n}", id.name());
    }
}

#[test]
fn determinism_across_loads() {
    for id in [DatasetId::CitHepTh, DatasetId::Dblp, DatasetId::WebGoogle] {
        let a = load(id, 128);
        let b = load(id, 128);
        assert_eq!(a.graph, b.graph, "{} not deterministic", id.name());
        assert_eq!(a.roles, b.roles);
    }
}
