//! Cross-measure invariants on realistic generated graphs — the containment
//! relations §3 of the paper derives between the path families each measure
//! aggregates.

use simrank_star::{exponential, geometric, single_source, SimStarParams, SimilarityMatrix};
use ssr_baselines::{rwr::rwr_matrix, simrank::simrank};
use ssr_gen::citation::{citation_graph, CitationParams};

fn test_graph() -> ssr_graph::DiGraph {
    citation_graph(CitationParams { nodes: 120, avg_out_degree: 4.0, ..Default::default() }, 0xCAFE)
}

/// SimRank\* aggregates a superset of both SimRank's (symmetric) and RWR's
/// (unidirectional) path families, so its support contains both supports.
#[test]
fn star_support_contains_simrank_and_rwr() {
    let g = test_graph();
    let k = 8;
    let c = 0.7;
    let star = geometric::iterate(&g, &SimStarParams::new(c, k));
    let sr = simrank(&g, c, k);
    let rw = rwr_matrix(&g, c, k);
    for a in 0..g.node_count() as u32 {
        for b in 0..g.node_count() as u32 {
            if a == b {
                continue;
            }
            if sr.score(a, b) > 1e-12 {
                assert!(star.score(a, b) > 0.0, "SR support not contained at ({a},{b})");
            }
            if rw.score(a, b) > 1e-12 {
                assert!(star.score(a, b) > 0.0, "RWR support not contained at ({a},{b})");
            }
        }
    }
}

/// Geometric and exponential SimRank\* order node pairs almost identically
/// (the Fig. 6(a) "relative order well maintained" claim), quantified with
/// Kendall concordance over a sampled row set.
#[test]
fn exponential_preserves_geometric_order() {
    let g = test_graph();
    let p = SimStarParams { c: 0.6, iterations: 8 };
    let geo = geometric::iterate(&g, &p);
    let exp = exponential::closed_form(&g, &p);
    for q in [0u32, 40, 80, 119] {
        let tau = ssr_eval::metrics::kendall_concordance(geo.row(q), exp.row(q));
        assert!(tau > 0.9, "query {q}: order agreement {tau} too low");
    }
}

/// The sieved serialization round-trips rankings: top-k from a reloaded
/// matrix equals top-k from the original wherever scores clear the sieve.
#[test]
fn sieved_io_preserves_rankings() {
    let g = test_graph();
    let sim = geometric::iterate(&g, &SimStarParams::default());
    let mut buf = Vec::new();
    sim.write_sieved(&mut buf, 1e-4).unwrap();
    let back = SimilarityMatrix::read_sieved(buf.as_slice()).unwrap();
    for q in [3u32, 77] {
        let orig: Vec<_> = sim.top_k(q, 5).into_iter().filter(|&(_, s)| s >= 1e-4).collect();
        let reload = back.top_k(q, orig.len());
        assert_eq!(
            orig.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            reload.iter().map(|&(v, _)| v).collect::<Vec<_>>()
        );
    }
}

/// Single-source agrees with the all-pairs matrix on a realistic graph (not
/// just the unit-test toys).
#[test]
fn single_source_matches_matrix_on_citation_graph() {
    let g = test_graph();
    let p = SimStarParams { c: 0.6, iterations: 6 };
    let full = geometric::iterate(&g, &p);
    for q in [0u32, 59, 119] {
        let row = single_source::single_source(&g, q, &p);
        for (v, &rv) in row.iter().enumerate() {
            assert!(
                (rv - full.score(q, v as u32)).abs() < 1e-10,
                "q={q} v={v}: {rv} vs {}",
                full.score(q, v as u32)
            );
        }
    }
}

/// Threshold clipping never reorders surviving entries.
#[test]
fn clipping_preserves_order_of_survivors() {
    let g = test_graph();
    let sim = geometric::iterate(&g, &SimStarParams::default());
    let mut clipped = sim.clone();
    clipped.clip_below(1e-4);
    for q in [10u32, 100] {
        let before: Vec<u32> =
            sim.top_k(q, 10).into_iter().filter(|&(_, s)| s >= 1e-4).map(|(v, _)| v).collect();
        let after: Vec<u32> = clipped.top_k(q, before.len()).into_iter().map(|(v, _)| v).collect();
        assert_eq!(before, after, "query {q}");
    }
}
