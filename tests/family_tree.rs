//! The Figure 3 family-tree semantics: "the more symmetric the in-link
//! paths are, the larger contributions they will have to similarity", plus
//! the §3.1 comparison of which relations each measure can see at all.

use simrank_star::{geometric, SimStarParams};
use ssr_baselines::{rwr::rwr_matrix, simrank::simrank};
use ssr_gen::fixtures::{family::*, family_tree};

const DAMP: f64 = 0.8;
const K: usize = 20;

#[test]
fn symmetry_ordering_rho_a_b_c() {
    // ρ_A: Me↔Cousin (source Grandpa at distance 2/2, symmetric)
    // ρ_B: Uncle↔Son (source Grandpa at distance 1/3)
    // ρ_C: Grandpa↔Grandson (source Grandpa at distance 0/4)
    // All have length-4 in-link paths; SimRank* must order them
    // ρ_A > ρ_B > ρ_C by the binomial symmetry weights 6 > 4 > 1.
    let g = family_tree();
    let s = geometric::iterate(&g, &SimStarParams::new(DAMP, K));
    let rho_a = s.score(ME, COUSIN);
    let rho_b = s.score(UNCLE, SON);
    let rho_c = s.score(GRANDPA, GRANDSON);
    assert!(rho_a > rho_b, "ρ_A={rho_a} must exceed ρ_B={rho_b}");
    assert!(rho_b > rho_c, "ρ_B={rho_b} must exceed ρ_C={rho_c}");
    assert!(rho_c > 0.0, "even the fully dissymmetric path must contribute");
}

#[test]
fn all_family_pairs_are_related_under_star() {
    // §3.1: "all nodes in the family tree G should have some relevances."
    let g = family_tree();
    let s = geometric::iterate(&g, &SimStarParams::new(DAMP, K));
    for a in 0..g.node_count() as u32 {
        for b in 0..g.node_count() as u32 {
            if a == b {
                continue;
            }
            assert!(s.score(a, b) > 0.0, "family pair ({a},{b}) scored 0 under SimRank*");
        }
    }
}

#[test]
fn simrank_sees_cousin_but_not_father() {
    // SimRank accommodates "Me and Cousin" (symmetric) but neglects
    // "Me and Father" (odd length) and "Me and Uncle".
    let g = family_tree();
    let s = simrank(&g, DAMP, K);
    assert!(s.score(ME, COUSIN) > 0.0);
    assert_eq!(s.score(ME, FATHER), 0.0);
    assert_eq!(s.score(ME, UNCLE), 0.0);
}

#[test]
fn rwr_sees_father_but_not_cousin_and_is_asymmetric() {
    // RWR considers "Father and Me" (downward path) but ignores "Me and
    // Cousin"; and since no path runs from Me to Father,
    // s(Me, Father) = 0 ≠ s(Father, Me).
    let g = family_tree();
    let s = rwr_matrix(&g, DAMP, 2 * K);
    assert!(s.score(FATHER, ME) > 0.0);
    assert_eq!(s.score(ME, FATHER), 0.0);
    assert_eq!(s.score(ME, COUSIN), 0.0);
    assert_eq!(s.score(ME, UNCLE), 0.0);
}

#[test]
fn star_unifies_both_views() {
    // The "unified measure" motivation: SimRank* covers the union of what
    // SimRank and RWR each see, symmetrically.
    let g = family_tree();
    let s = geometric::iterate(&g, &SimStarParams::new(DAMP, K));
    assert!(s.score(ME, COUSIN) > 0.0); // SimRank's territory
    assert!(s.score(ME, FATHER) > 0.0); // RWR's territory
    assert!(s.score(ME, UNCLE) > 0.0); // neither's territory
    assert!((s.score(ME, FATHER) - s.score(FATHER, ME)).abs() < 1e-12);
}
